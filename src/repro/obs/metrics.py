"""Process-local metrics: counters, gauges and histograms with labels.

Prometheus-flavoured but dependency-free.  A :class:`MetricsRegistry`
memoizes metrics by name; each metric exposes ``labels(**kv)`` returning a
labeled child so call sites can write::

    registry.counter("scheduler_watchdog_trips_total").labels(
        scheduler="solstice", event="config-cap"
    ).inc()

Like the tracer, the process default is a :class:`NullMetricsRegistry`
whose metrics are shared no-op singletons — instrumentation left in the hot
paths costs one ``enabled`` check when observability is off.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-serializable
dicts; :meth:`MetricsRegistry.merge` folds one registry's snapshot into
another (counters and histograms add, gauges last-write-wins), which is how
forked sweep workers report their metrics back to the parent process.

Thread safety: every metric in a registry shares the registry's re-entrant
lock — mutations (``inc``/``set``/``observe``/``_merge``) and reads
(:meth:`MetricsRegistry.snapshot`) serialize on it, so a snapshot taken
while another thread increments (the live ``/metrics`` scrape path) is a
consistent point-in-time cut: no torn histogram (``sum`` without its
``count``), no half-applied worker-blob merge.  The lock is only ever
touched when a *real* registry is installed; the null backend stays
lock-free, so the off-path overhead guarantee is untouched.
"""

from __future__ import annotations

import threading

#: Default histogram bucket upper bounds (seconds, tuned for scheduler /
#: simulation phases ranging from microseconds to minutes).
DEFAULT_BUCKETS: "tuple[float, ...]" = (
    1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _label_key(labels: dict) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (optionally labeled)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: "dict | None" = None,
        lock: "threading.RLock | None" = None,
    ) -> None:
        self.name = name
        self.description = description
        self.label_values: dict = dict(labels or {})
        self.value: float = 0.0
        self._children: "dict[tuple, Counter]" = {}
        # Shared with every labeled child (and, via the registry, with
        # every sibling metric) so snapshot() is one consistent cut.
        self._lock = lock if lock is not None else threading.RLock()

    def labels(self, **kv) -> "Counter":
        key = _label_key(kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.description, labels=kv, lock=self._lock)
                self._children[key] = child
        return child

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount

    def _values(self) -> "list[dict]":
        with self._lock:
            out = []
            if self.value or not self._children:
                out.append({"labels": self.label_values, "value": self.value})
            for child in self._children.values():
                out.extend(child._values())
            return out

    def _merge(self, entry: dict) -> None:
        with self._lock:
            labels = entry.get("labels") or {}
            target = self.labels(**labels) if labels else self
            target.value += float(entry.get("value", 0.0))


class Gauge(Counter):
    """Last-write-wins value (e.g. the most recent trial's wall time)."""

    kind = "gauge"

    # labels() is inherited: it builds children via ``type(self)``, so a
    # labeled child of a Gauge is a Gauge sharing the same lock.

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def _merge(self, entry: dict) -> None:
        with self._lock:
            labels = entry.get("labels") or {}
            target = self.labels(**labels) if labels else self
            target.value = float(entry.get("value", 0.0))


class Histogram:
    """Distribution of observations over fixed buckets (optionally labeled)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
        labels: "dict | None" = None,
        lock: "threading.RLock | None" = None,
    ) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} buckets must be sorted")
        self.name = name
        self.description = description
        self.buckets = tuple(float(b) for b in buckets)
        self.label_values: dict = dict(labels or {})
        self.count = 0
        self.sum = 0.0
        # One slot per bucket plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._children: "dict[tuple, Histogram]" = {}
        self._lock = lock if lock is not None else threading.RLock()

    def labels(self, **kv) -> "Histogram":
        key = _label_key(kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(
                    self.name, self.description, self.buckets, labels=kv, lock=self._lock
                )
                self._children[key] = child
        return child

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def _values(self) -> "list[dict]":
        with self._lock:
            out = []
            if self.count or not self._children:
                out.append(
                    {
                        "labels": self.label_values,
                        "count": self.count,
                        "sum": self.sum,
                        "bucket_counts": list(self.bucket_counts),
                        "buckets": list(self.buckets),
                    }
                )
            for child in self._children.values():
                out.extend(child._values())
            return out

    def _merge(self, entry: dict) -> None:
        with self._lock:
            labels = entry.get("labels") or {}
            target = self.labels(**labels) if labels else self
            target.count += int(entry.get("count", 0))
            target.sum += float(entry.get("sum", 0.0))
            counts = entry.get("bucket_counts") or []
            if len(counts) == len(target.bucket_counts):
                target.bucket_counts = [
                    a + b for a, b in zip(target.bucket_counts, counts)
                ]
            elif counts:  # foreign bucket layout: keep totals, drop the shape
                target.bucket_counts[-1] += sum(counts)


class MetricsRegistry:
    """Name → metric store for one process (or one CLI invocation)."""

    enabled: bool = True

    def __init__(self) -> None:
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}
        # One re-entrant lock for the whole registry, shared by every
        # metric it creates: holding it in snapshot()/merge() excludes
        # every concurrent inc()/observe() in one shot (re-entrant because
        # merge() re-enters through each metric's _merge()).
        self._lock = threading.RLock()

    def _get(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}, not a {kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(
            name, lambda: Counter(name, description, lock=self._lock), "counter"
        )

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(
            name, lambda: Gauge(name, description, lock=self._lock), "gauge"
        )

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(
            name,
            lambda: Histogram(name, description, buckets, lock=self._lock),
            "histogram",
        )

    def reset(self) -> None:
        """Drop every metric (fork workers call this before their trial)."""
        with self._lock:
            self._metrics = {}

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-serializable dump of every metric and labeled child.

        Taken under the registry lock: a scrape racing the service loop
        sees every metric at one instant, never a torn cut.
        """
        with self._lock:
            return {
                name: {
                    "type": metric.kind,
                    "description": metric.description,
                    "values": metric._values(),
                }
                for name, metric in sorted(self._metrics.items())
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms accumulate; gauges take the incoming value
        (the child process observed it later than we did).  Atomic under
        the registry lock: a concurrent :meth:`snapshot` sees the whole
        worker blob applied or none of it.
        """
        with self._lock:
            self._merge_locked(snapshot)

    def _merge_locked(self, snapshot: dict) -> None:
        for name, payload in (snapshot or {}).items():
            kind = payload.get("type", "counter")
            description = payload.get("description", "")
            if kind == "counter":
                metric = self.counter(name, description)
            elif kind == "gauge":
                metric = self.gauge(name, description)
            elif kind == "histogram":
                metric = self.histogram(name, description)
            else:
                continue
            for entry in payload.get("values", []):
                metric._merge(entry)


class _NullMetric:
    """Shared inert metric: accepts every operation, stores nothing."""

    __slots__ = ()

    def labels(self, **kv) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """Disabled registry: the process default when observability is off."""

    enabled: bool = False

    def counter(self, name: str, description: str = "") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, description: str = "") -> _NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, description: str = "", buckets=DEFAULT_BUCKETS) -> _NullMetric:
        return NULL_METRIC

    def snapshot(self) -> dict:
        return {}

    def merge(self, snapshot: dict) -> None:
        return None

    def reset(self) -> None:
        return None


NULL_METRICS = NullMetricsRegistry()
