"""Run-diff: align two traces by span path and report what changed.

Backs ``python -m repro obs diff A.jsonl B.jsonl``.  Two runs of the same
command produce span forests with different ids and (possibly) different
counts, but the *path* of a span — its root-to-leaf name chain, e.g.
``repro.compare/runner.trial/solstice.schedule`` — is stable, so phases
are aligned path-for-path (see :func:`repro.obs.summarize.group_paths`).
For every path the diff reports counts and wall-time aggregates (total,
min and median over repeated spans) on both sides, plus the delta.

Counters and histograms from the embedded metrics snapshots are diffed by
fully-labeled name.  A curated subset of counters —
:data:`QUALITY_COUNTERS` — measures *schedule quality* rather than wall
time (BigSlice slice counts, Eclipse greedy steps, watchdog trips,
composite-path grants, engine phases): those are deterministic for a
seeded run, so **any** difference is reported as schedule-quality drift,
the signal that a refactor changed what the scheduler decides, not just
how fast it decides it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.summarize import TraceData, group_paths

#: Counters whose values are deterministic for a seeded run: a drift here
#: means the *schedule* changed, not the machine's speed.  Timing-flavoured
#: metrics (``phase_seconds`` histograms, ``*_mb_total`` float volumes)
#: deliberately stay out; volumes get a relative tolerance instead.
QUALITY_COUNTERS: "frozenset[str]" = frozenset(
    {
        "solstice_schedules_total",
        "solstice_slices_total",
        "eclipse_schedules_total",
        "eclipse_steps_total",
        "scheduler_watchdog_trips_total",
        "cpsched_schedules_total",
        "cpsched_composite_grants_total",
        "engine_phases_total",
        "engine_events_total",
        "engine_dust_snaps_total",
        "controller_epochs_total",
        "reroute_backups_planned_total",
        "reroute_swaps_total",
        "deadline_fallback_total",
        "deadline_misses_total",
    }
)

#: Relative tolerance for float-valued quality counters (Mb volumes whose
#: summation order may legally differ between runs).
VOLUME_QUALITY_COUNTERS: "frozenset[str]" = frozenset(
    {
        "cpsched_composite_volume_mb_total",
        "engine_composite_released_mb_total",
        "engine_composite_reparked_mb_total",
        "reroute_reparked_mb_total",
        "controller_shed_mb_total",
    }
)
_VOLUME_RTOL: float = 1e-9


@dataclass(frozen=True)
class PhaseStats:
    """Wall-time aggregate of one span path on one side of the diff."""

    count: int
    total: float
    min: float
    median: float


@dataclass(frozen=True)
class PhaseDelta:
    """One aligned span path with stats from both runs (None = absent)."""

    path: str
    a: "PhaseStats | None"
    b: "PhaseStats | None"

    @property
    def delta_total(self) -> float:
        return (self.b.total if self.b else 0.0) - (self.a.total if self.a else 0.0)

    @property
    def ratio(self) -> "float | None":
        """B/A total wall time; ``None`` when A recorded nothing."""
        if self.a is None or self.a.total <= 0.0:
            return None
        return (self.b.total if self.b else 0.0) / self.a.total


@dataclass
class TraceDiff:
    """Full diff of two traces: phases, counters, quality drift."""

    meta_a: dict = field(default_factory=dict)
    meta_b: dict = field(default_factory=dict)
    phases: "list[PhaseDelta]" = field(default_factory=list)
    counters: "dict[str, tuple[float, float]]" = field(default_factory=dict)
    histograms: "dict[str, tuple[tuple[int, float], tuple[int, float]]]" = field(
        default_factory=dict
    )
    quality_drift: "list[dict]" = field(default_factory=list)

    @property
    def has_quality_drift(self) -> bool:
        return bool(self.quality_drift)


def _phase_stats(group) -> PhaseStats:
    from repro.obs.summarize import _duration

    durations = sorted(_duration(member) for member in group.members)
    mid = len(durations) // 2
    median = (
        durations[mid]
        if len(durations) % 2
        else 0.5 * (durations[mid - 1] + durations[mid])
    )
    return PhaseStats(
        count=group.count, total=group.total, min=durations[0], median=median
    )


def _flatten_snapshot(snapshot: dict) -> "tuple[dict, dict]":
    """Snapshot → ({labeled counter/gauge: value}, {labeled hist: (n, sum)})."""
    scalars: "dict[str, float]" = {}
    hists: "dict[str, tuple[int, float]]" = {}
    for name, payload in (snapshot or {}).items():
        for entry in payload.get("values", []):
            labels = entry.get("labels") or {}
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if payload.get("type") == "histogram":
                hists[name + suffix] = (
                    int(entry.get("count", 0)),
                    float(entry.get("sum", 0.0)),
                )
            else:
                scalars[name + suffix] = float(entry.get("value", 0.0))
    return scalars, hists


def _base_name(labeled: str) -> str:
    return labeled.split("{", 1)[0]


def diff_traces(a: TraceData, b: TraceData) -> TraceDiff:
    """Align ``a`` and ``b`` and compute the full diff."""
    groups_a = group_paths(a)
    groups_b = group_paths(b)
    phases = []
    # A-side first-start ordering keeps the report aligned with execution
    # order; B-only paths (new phases) sort at the end.
    order = sorted(
        set(groups_a) | set(groups_b),
        key=lambda path: (
            groups_a[path].first_start if path in groups_a else float("inf"),
            path,
        ),
    )
    for path in order:
        phases.append(
            PhaseDelta(
                path=path,
                a=_phase_stats(groups_a[path]) if path in groups_a else None,
                b=_phase_stats(groups_b[path]) if path in groups_b else None,
            )
        )

    scalars_a, hists_a = _flatten_snapshot(a.metrics)
    scalars_b, hists_b = _flatten_snapshot(b.metrics)
    counters = {
        name: (scalars_a.get(name, 0.0), scalars_b.get(name, 0.0))
        for name in sorted(set(scalars_a) | set(scalars_b))
    }
    histograms = {
        name: (hists_a.get(name, (0, 0.0)), hists_b.get(name, (0, 0.0)))
        for name in sorted(set(hists_a) | set(hists_b))
    }

    drift = []
    for name, (value_a, value_b) in counters.items():
        base = _base_name(name)
        if base in QUALITY_COUNTERS and value_a != value_b:
            drift.append({"metric": name, "a": value_a, "b": value_b})
        elif base in VOLUME_QUALITY_COUNTERS:
            tol = _VOLUME_RTOL * max(1.0, abs(value_a), abs(value_b))
            if abs(value_a - value_b) > tol:
                drift.append({"metric": name, "a": value_a, "b": value_b})
    return TraceDiff(
        meta_a=dict(a.meta),
        meta_b=dict(b.meta),
        phases=phases,
        counters=counters,
        histograms=histograms,
        quality_drift=drift,
    )


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #


def _fmt_ratio(delta: PhaseDelta) -> str:
    if delta.a is None:
        return "(new)"
    if delta.b is None:
        return "(gone)"
    ratio = delta.ratio
    if ratio is None:
        return ""
    return f"{(ratio - 1.0) * 100.0:+.1f}%"


def _fmt_stats(stats: "PhaseStats | None") -> str:
    if stats is None:
        return "—"
    if stats.count == 1:
        return f"{stats.total:.4f}s"
    return f"{stats.total:.4f}s ×{stats.count} (min {stats.min:.4f}s, med {stats.median:.4f}s)"


def render_diff(diff: TraceDiff, top: int = 10) -> str:
    """Human report: the phase tree with A → B timings, counters, drift."""
    lines = [
        "phase wall time (A → B, aligned by span path)",
    ]
    for delta in diff.phases:
        depth = delta.path.count("/")
        name = delta.path.rsplit("/", 1)[-1]
        indent = "   " * depth + ("└─ " if depth else "")
        label = f"{indent}{name}"
        lines.append(
            f"{label:<44} {_fmt_stats(delta.a)}  →  {_fmt_stats(delta.b)}  "
            f"{_fmt_ratio(delta)}".rstrip()
        )
    if not diff.phases:
        lines.append("  (no spans on either side)")

    changed = [
        (name, a, b) for name, (a, b) in diff.counters.items() if a != b
    ]
    lines.append("")
    if changed:
        lines.append(f"counter deltas ({len(changed)} changed)")
        for name, a, b in sorted(changed, key=lambda item: -abs(item[2] - item[1]))[:top]:
            lines.append(f"  {name:<58} {a:g} → {b:g}  ({b - a:+g})")
    else:
        lines.append("counter deltas: none")

    changed_hists = [
        (name, a, b) for name, (a, b) in diff.histograms.items() if a != b
    ]
    if changed_hists:
        lines.append("")
        lines.append(f"histogram deltas ({len(changed_hists)} changed)")
        for name, (count_a, sum_a), (count_b, sum_b) in changed_hists[:top]:
            lines.append(
                f"  {name:<58} n={count_a}→{count_b} "
                f"sum={sum_a:.4f}s→{sum_b:.4f}s ({sum_b - sum_a:+.4f}s)"
            )

    lines.append("")
    if diff.quality_drift:
        lines.append(f"SCHEDULE-QUALITY DRIFT ({len(diff.quality_drift)} metric(s)):")
        for entry in diff.quality_drift:
            lines.append(
                f"  {entry['metric']:<58} {entry['a']:g} → {entry['b']:g}"
            )
    else:
        lines.append("schedule-quality drift: none")
    return "\n".join(lines)


def diff_to_json(diff: TraceDiff) -> dict:
    """Machine-readable form of the diff (``--json`` output)."""

    def stats(s: "PhaseStats | None") -> "dict | None":
        if s is None:
            return None
        return {"count": s.count, "total_s": s.total, "min_s": s.min, "median_s": s.median}

    return {
        "format": 1,
        "a": {"command": diff.meta_a.get("command"), "wall_s": diff.meta_a.get("wall_s")},
        "b": {"command": diff.meta_b.get("command"), "wall_s": diff.meta_b.get("wall_s")},
        "phases": [
            {
                "path": d.path,
                "a": stats(d.a),
                "b": stats(d.b),
                "delta_total_s": d.delta_total,
                "ratio": d.ratio,
            }
            for d in diff.phases
        ],
        "counters": {
            name: {"a": a, "b": b, "delta": b - a}
            for name, (a, b) in diff.counters.items()
        },
        "histograms": {
            name: {
                "a": {"count": a[0], "sum_s": a[1]},
                "b": {"count": b[0], "sum_s": b[1]},
            }
            for name, (a, b) in diff.histograms.items()
        },
        "quality_drift": list(diff.quality_drift),
    }
