"""Structured tracing: spans and events, serialized as JSONL.

A *span* is a named, timed interval with free-form attributes and a parent
(the span that was open when it began) — together they form the span tree
``repro obs summarize`` renders.  An *event* is a point-in-time record
attached to the currently open span (e.g. a scheduler watchdog trip or a
composite-path release).

Two tracer implementations share one interface:

* :class:`NullTracer` — the process default.  ``enabled`` is ``False`` and
  every method is a no-op, so instrumentation sites guard their work with
  a single attribute check and the hot paths pay nothing when tracing is
  off.
* :class:`JsonlTracer` — buffers records in memory and dumps them as one
  JSONL file through :func:`repro.utils.fileio.atomic_write_text` (a crash
  never leaves a torn trace where a valid one used to be).

Timestamps are seconds relative to the tracer's epoch (``time.perf_counter``
at construction).  On Linux ``perf_counter`` is a system-wide monotonic
clock, so spans recorded in a *forked* sweep worker and absorbed back into
the parent tracer (see :meth:`Tracer.absorb`) live on the same time base.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.utils.fileio import atomic_write_text

#: Version of the trace record envelope.
TRACE_FORMAT: int = 1


def _jsonable(value):
    """Best-effort JSON coercion for attribute values (numpy scalars etc.)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _clean_attrs(attrs: dict) -> dict:
    return {key: _jsonable(value) for key, value in attrs.items()}


class SpanHandle:
    """Mutable handle of one open (or closed) span."""

    __slots__ = ("record",)

    def __init__(self, record: dict) -> None:
        self.record = record

    def set(self, **attrs) -> "SpanHandle":
        """Attach attributes to the span (visible in the dumped trace)."""
        self.record["attrs"].update(_clean_attrs(attrs))
        return self


class _NullSpan:
    """Shared do-nothing span handle returned by the null tracer."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager pairing one ``begin`` with its ``end``."""

    __slots__ = ("_tracer", "_handle")

    def __init__(self, tracer: "JsonlTracer", handle: SpanHandle) -> None:
        self._tracer = tracer
        self._handle = handle

    def __enter__(self) -> SpanHandle:
        return self._handle

    def __exit__(self, *exc) -> None:
        self._tracer.end(self._handle)


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    The singleton :data:`NULL_TRACER` is the process default; call sites
    check ``tracer.enabled`` once and skip their bookkeeping entirely.
    """

    enabled: bool = False

    def begin(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def end(self, handle, **attrs) -> None:
        return None

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def drain(self) -> "list[dict]":
        return []

    def absorb(self, records) -> None:
        return None

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()


class JsonlTracer:
    """In-memory span/event recorder with atomic JSONL persistence.

    Parameters
    ----------
    clock:
        Injection point for the time source (tests pass a fake); defaults
        to :func:`time.perf_counter`.
    """

    enabled: bool = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._records: "list[dict]" = []
        self._stack: "list[SpanHandle]" = []
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        return self._clock() - self._epoch

    @property
    def current_span_id(self) -> "int | None":
        return self._stack[-1].record["id"] if self._stack else None

    def begin(self, name: str, **attrs) -> SpanHandle:
        """Open a span; it becomes the parent of spans begun inside it."""
        record = {
            "kind": "span",
            "id": self._next_id,
            "parent": self.current_span_id,
            "name": name,
            "start": self._now(),
            "end": None,
            "attrs": _clean_attrs(attrs),
        }
        self._next_id += 1
        handle = SpanHandle(record)
        self._stack.append(handle)
        return handle

    def end(self, handle: SpanHandle, **attrs) -> None:
        """Close ``handle`` (and any spans left open inside it)."""
        if attrs:
            handle.set(**attrs)
        now = self._now()
        while self._stack:
            top = self._stack.pop()
            top.record["end"] = now
            self._records.append(top.record)
            if top is handle:
                return
        # Foreign/stale handle: record it anyway rather than lose the data.
        if handle.record.get("end") is None:
            handle.record["end"] = now
            self._records.append(handle.record)

    def span(self, name: str, **attrs) -> _SpanContext:
        """``with tracer.span("name") as span: ...`` convenience wrapper."""
        return _SpanContext(self, self.begin(name, **attrs))

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event under the currently open span."""
        self._records.append(
            {
                "kind": "event",
                "name": name,
                "span": self.current_span_id,
                "t": self._now(),
                "attrs": _clean_attrs(attrs),
            }
        )

    # ------------------------------------------------------------------ #
    # cross-process plumbing
    # ------------------------------------------------------------------ #

    def drain(self) -> "list[dict]":
        """Return and clear the closed records (open spans stay on the stack).

        Used by forked sweep workers to ship their records back to the
        parent over the result pipe.
        """
        records, self._records = self._records, []
        return records

    def absorb(self, records: "list[dict]") -> None:
        """Merge records drained from another tracer (e.g. a fork worker).

        Span ids are remapped onto this tracer's id space and parentless
        spans are attached under the currently open span, so a worker's
        engine/scheduler spans appear beneath the trial span that launched
        it.
        """
        if not records:
            return
        idmap: "dict[int, int]" = {}
        for record in records:
            if record.get("kind") == "span":
                idmap[record["id"]] = self._next_id
                self._next_id += 1
        graft = self.current_span_id
        for record in records:
            record = dict(record)
            if record.get("kind") == "span":
                record["id"] = idmap[record["id"]]
                parent = record.get("parent")
                record["parent"] = idmap.get(parent, graft) if parent is not None else graft
            elif record.get("kind") == "event":
                span = record.get("span")
                record["span"] = idmap.get(span, graft) if span is not None else graft
            self._records.append(record)

    def reset(self) -> None:
        """Forget everything recorded so far (fork workers call this first).

        A forked worker inherits the parent's buffered records and open
        stack; resetting keeps its drain limited to its own work.
        """
        self._records = []
        self._stack = []

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def records(self) -> "list[dict]":
        """Closed records in end order (open spans not included)."""
        return list(self._records)

    def dump(
        self,
        path: "str | Path",
        *,
        meta: "dict | None" = None,
        metrics_snapshot: "dict | None" = None,
    ) -> Path:
        """Atomically write the trace as JSONL.

        Line 0 is a ``meta`` record (format version + free-form context);
        open spans are closed at the current clock and flagged
        ``"open": true``; an optional metrics snapshot rides along as a
        final ``metrics`` record so one file feeds the whole summary.
        """
        now = self._now()
        records = list(self._records)
        for handle in self._stack:
            record = dict(handle.record)
            record["end"] = now
            record["open"] = True
            records.append(record)
        lines = [
            json.dumps(
                {
                    "kind": "meta",
                    "format": TRACE_FORMAT,
                    "wall_s": now,
                    **_clean_attrs(meta or {}),
                },
                sort_keys=True,
            )
        ]
        lines += [json.dumps(record, sort_keys=True, default=str) for record in records]
        if metrics_snapshot is not None:
            lines.append(
                json.dumps(
                    {"kind": "metrics", "snapshot": metrics_snapshot}, sort_keys=True
                )
            )
        return atomic_write_text(path, "\n".join(lines) + "\n")
