"""Flight recorder: bounded epoch history + auto-dumped incident bundles.

A long-running scheduling service fails in ways a post-mortem trace dump
cannot explain: by the time the process exits, the epochs surrounding a
worker crash or a fallback-ladder dive are millions of spans in the past.
The :class:`FlightRecorder` keeps a bounded ring of the last N epochs —
each frame holds the epoch's :class:`~repro.analysis.controller.EpochReport`
(as a dict), a small outcome summary, the trace records closed during that
epoch (including absorbed per-worker blobs), and any structured worker
death records — and, when a trigger fires, atomically dumps an *incident
bundle* (window + metrics snapshot) to ``<incidents_dir>/``.

Trigger kinds (one bundle per kind per epoch):

==========================  ============================================
:data:`TRIGGER_SLO`         the epoch was counted as an SLO violation
:data:`TRIGGER_FALLBACK`    anytime fallback level >= the threshold
                            (default L2 — warm reuse or worse)
:data:`TRIGGER_CRASH`       a pool worker died/was respawned this epoch
:data:`TRIGGER_REROUTE`     a mid-epoch fast-reroute swap executed
==========================  ============================================

``python -m repro obs incidents <path>`` lists a bundle directory or
renders one bundle — reusing the ``summarize`` span-tree/counter
renderers, so an incident reads exactly like a trace summary focused on
the epochs that mattered.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.summarize import TraceData, render_counters, render_span_tree
from repro.utils.fileio import atomic_write_json

#: Version of the incident bundle envelope.
INCIDENT_FORMAT: int = 1

TRIGGER_SLO = "slo_violation"
TRIGGER_FALLBACK = "fallback"
TRIGGER_CRASH = "worker_crash"
TRIGGER_REROUTE = "reroute_swap"

#: Every trigger kind a recorder can fire, in severity order.
TRIGGER_KINDS: "tuple[str, ...]" = (
    TRIGGER_CRASH,
    TRIGGER_FALLBACK,
    TRIGGER_SLO,
    TRIGGER_REROUTE,
)

#: Fallback levels at or above this dump an incident.  Mirrors
#: :data:`repro.service.deadline.FALLBACK_WARM_REUSE` (kept as a literal so
#: the obs layer does not import the service package).
FALLBACK_TRIGGER_LEVEL: int = 2


@dataclass
class EpochFrame:
    """One epoch's worth of flight-recorder history."""

    epoch: int
    report: dict
    outcome: dict = field(default_factory=dict)
    records: "list[dict]" = field(default_factory=list)
    worker_deaths: "list[dict]" = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "epoch": self.epoch,
            "report": self.report,
            "outcome": self.outcome,
            "records": self.records,
            "worker_deaths": self.worker_deaths,
        }


def _frame_triggers(frame: EpochFrame, fallback_level: int) -> "list[tuple[str, str]]":
    """The (kind, reason) triggers one epoch frame fires."""
    triggers: "list[tuple[str, str]]" = []
    if frame.worker_deaths:
        pids = sorted({d.get("pid") for d in frame.worker_deaths if d.get("pid")})
        triggers.append(
            (TRIGGER_CRASH, f"{len(frame.worker_deaths)} worker death(s), pids {pids}")
        )
    level = int(frame.report.get("fallback_level", 0) or 0)
    if level >= fallback_level:
        triggers.append((TRIGGER_FALLBACK, f"anytime fallback level L{level}"))
    if frame.outcome.get("slo_violation"):
        reasons = frame.outcome.get("slo_reasons") or []
        triggers.append(
            (TRIGGER_SLO, "SLO violation" + (f" ({', '.join(reasons)})" if reasons else ""))
        )
    swaps = int(frame.report.get("reroute_swaps", 0) or 0)
    if swaps:
        triggers.append((TRIGGER_REROUTE, f"{swaps} mid-epoch reroute swap(s)"))
    return triggers


class FlightRecorder:
    """Bounded ring of epoch frames with trigger-fired incident dumps.

    Parameters
    ----------
    incidents_dir:
        Where bundles land (created on first dump).  ``None`` keeps the
        ring in memory only — triggers are still detected and counted,
        nothing is written.
    window_epochs:
        Ring capacity: how many epochs of context a bundle carries.
    fallback_level:
        Minimum anytime fallback level that fires :data:`TRIGGER_FALLBACK`.
    max_incidents:
        Stop dumping after this many bundles (a flapping service must not
        fill the disk); detection keeps counting.
    """

    def __init__(
        self,
        incidents_dir: "str | Path | None" = None,
        *,
        window_epochs: int = 8,
        fallback_level: int = FALLBACK_TRIGGER_LEVEL,
        max_incidents: int = 64,
    ) -> None:
        if window_epochs < 1:
            raise ValueError(f"window_epochs must be >= 1, got {window_epochs}")
        self.incidents_dir = Path(incidents_dir) if incidents_dir is not None else None
        self.fallback_level = fallback_level
        self.max_incidents = max_incidents
        self._frames: "deque[EpochFrame]" = deque(maxlen=window_epochs)
        self._seq = 0
        self.triggered: "dict[str, int]" = {}
        self.bundles_written: "list[Path]" = []

    @property
    def frames(self) -> "tuple[EpochFrame, ...]":
        return tuple(self._frames)

    def observe_epoch(
        self, frame: EpochFrame, *, metrics_snapshot: "dict | None" = None
    ) -> "list[Path]":
        """Append one epoch frame; dump a bundle per trigger it fires.

        ``metrics_snapshot`` is the registry state at dump time (taken
        under the registry lock by the caller); it rides along in every
        bundle so a scrapeless deployment still gets the counters.
        """
        self._frames.append(frame)
        written: "list[Path]" = []
        for kind, reason in _frame_triggers(frame, self.fallback_level):
            self.triggered[kind] = self.triggered.get(kind, 0) + 1
            path = self._dump(kind, reason, frame, metrics_snapshot or {})
            if path is not None:
                written.append(path)
        return written

    def _dump(
        self, kind: str, reason: str, frame: EpochFrame, metrics_snapshot: dict
    ) -> "Path | None":
        if self.incidents_dir is None or self._seq >= self.max_incidents:
            return None
        bundle = {
            "format": INCIDENT_FORMAT,
            "trigger": kind,
            "reason": reason,
            "epoch": frame.epoch,
            "dumped_at": time.time(),
            "window_epochs": [f.epoch for f in self._frames],
            "frames": [f.to_json() for f in self._frames],
            "metrics": metrics_snapshot,
        }
        name = f"incident-{self._seq:04d}-epoch{frame.epoch:05d}-{kind}.json"
        self._seq += 1
        path = self.incidents_dir / name
        self.incidents_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(bundle, path)
        self.bundles_written.append(path)
        return path


# ---------------------------------------------------------------------- #
# bundle IO + rendering (``repro obs incidents``)
# ---------------------------------------------------------------------- #


def load_incident(path: "str | Path") -> dict:
    """Parse one incident bundle, failing loudly on a foreign envelope."""
    path = Path(path)
    bundle = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(bundle, dict) or "trigger" not in bundle:
        raise ValueError(f"{path} is not an incident bundle (no trigger field)")
    version = bundle.get("format")
    if version != INCIDENT_FORMAT:
        raise ValueError(
            f"unsupported incident bundle format v{version} in {path} "
            f"(expected v{INCIDENT_FORMAT})"
        )
    return bundle


def list_incidents(directory: "str | Path") -> "list[Path]":
    """Bundle files in a directory, in dump (sequence) order."""
    directory = Path(directory)
    return sorted(directory.glob("incident-*.json"))


def _bundle_trace(bundle: dict) -> TraceData:
    """The window's trace records as one renderable :class:`TraceData`."""
    spans: "list[dict]" = []
    events: "list[dict]" = []
    for frame in bundle.get("frames", []):
        for record in frame.get("records", []):
            if record.get("kind") == "span":
                spans.append(record)
            elif record.get("kind") == "event":
                events.append(record)
    return TraceData(spans=spans, events=events, metrics=bundle.get("metrics", {}))


def render_incident(bundle: dict, *, top: int = 10, max_depth: "int | None" = None) -> str:
    """Render one bundle like a trace summary focused on the incident."""
    frames = bundle.get("frames", [])
    window = bundle.get("window_epochs", [])
    lines = [
        f"incident: {bundle.get('trigger', '?')} at epoch {bundle.get('epoch', '?')} "
        f"— {bundle.get('reason', '')}",
        f"window: {len(frames)} epoch(s) "
        + (f"[{window[0]}..{window[-1]}]" if window else "[]"),
    ]
    for frame in frames:
        report = frame.get("report", {})
        marks = []
        if frame.get("worker_deaths"):
            marks.append(f"{len(frame['worker_deaths'])} worker death(s)")
        if report.get("fallback_level"):
            marks.append(f"fallback L{report['fallback_level']}")
        if report.get("deadline_hit"):
            marks.append("deadline miss")
        if report.get("reroute_swaps"):
            marks.append(f"{report['reroute_swaps']} reroute swap(s)")
        flag = "  ← " + ", ".join(marks) if marks else ""
        lines.append(
            f"  epoch {frame.get('epoch', '?'):>4}: "
            f"offered {report.get('offered_volume', 0.0):.1f} Mb, "
            f"served {report.get('served_volume', 0.0):.1f} Mb, "
            f"backlog {report.get('backlog_after', 0.0):.1f} Mb, "
            f"latency {frame.get('outcome', {}).get('epoch_latency_s', 0.0) * 1e3:.1f} ms"
            f"{flag}"
        )
    data = _bundle_trace(bundle)
    if data.spans:
        lines.append("")
        lines.append("span tree (window, siblings aggregated by name)")
        lines.extend(render_span_tree(data, max_depth=max_depth))
    if data.metrics:
        lines.append("")
        lines.append(f"top {top} counters at dump time")
        lines.extend(render_counters(data.metrics, top=top))
    return "\n".join(lines)


def render_incident_listing(directory: "str | Path") -> str:
    """One line per bundle in a directory (``repro obs incidents DIR``)."""
    paths = list_incidents(directory)
    if not paths:
        return f"no incident bundles under {directory}"
    lines = [f"{len(paths)} incident bundle(s) under {directory}"]
    for path in paths:
        try:
            bundle = load_incident(path)
        except (ValueError, OSError, json.JSONDecodeError):
            lines.append(f"  {path.name:<48} (unreadable)")
            continue
        lines.append(
            f"  {path.name:<48} epoch {bundle.get('epoch', '?'):>4}  "
            f"{bundle.get('trigger', '?'):<14} {bundle.get('reason', '')}"
        )
    return "\n".join(lines)
