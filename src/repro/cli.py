"""Command-line interface: ``python -m repro <command>``.

Gives the library a no-code surface for the common workflows:

* ``compare``  — run the h-Switch vs cp-Switch comparison on one of the
  paper's workloads and print the aggregated metrics;
* ``figure``   — regenerate one of the paper's figures (radix sweep);
* ``schedule`` — schedule a demand matrix from a ``.npy``/``.csv`` file
  and print the resulting configurations;
* ``workload`` — sample a demand matrix from one of the paper's models
  and write it to a file (for feeding external tools or ``schedule``);
* ``robustness`` — degradation under imperfection: a hardware fault sweep
  (h vs cp completion versus injected fault rate, with the volume failed
  over from dead composite paths) followed by a demand-estimation-error
  sweep (noise / staleness / missed entries).

Examples
--------
::

    python -m repro compare --workload skewed --scheduler solstice \
        --ocs fast --radix 64 --trials 5
    python -m repro figure fig5 --ocs fast --radices 32,64 --trials 3
    python -m repro workload --workload typical --radix 32 --out demand.npy
    python -m repro schedule demand.npy --switch cp --scheduler eclipse
    python -m repro robustness --radix 32 --trials 2 \
        --fault-rates 0,0.1,0.3 --error-rates 0,0.1,0.3
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.experiment import ExperimentConfig, run_comparison
from repro.analysis.report import format_table
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.base import make_scheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams, fast_ocs_params, slow_ocs_params
from repro.workloads import (
    CombinedWorkload,
    SkewedWorkload,
    TypicalBackgroundWorkload,
    VaryingSkewWorkload,
)

WORKLOADS = ("skewed", "background", "typical", "intensive", "varying")


def _params(args) -> SwitchParams:
    factory = fast_ocs_params if args.ocs == "fast" else slow_ocs_params
    return factory(args.radix)


def _workload(name: str, params: SwitchParams, skewed_ports: int):
    if name == "skewed":
        return SkewedWorkload.for_params(params)
    if name == "background":
        return TypicalBackgroundWorkload.for_params(params)
    if name == "typical":
        return CombinedWorkload.typical(params)
    if name == "intensive":
        return CombinedWorkload.intensive(params)
    if name == "varying":
        return VaryingSkewWorkload.for_params(params, n_skewed_ports=skewed_ports)
    raise ValueError(f"unknown workload {name!r}")


def _load_demand(path: Path) -> np.ndarray:
    if path.suffix == ".npy":
        return np.load(path)
    if path.suffix == ".csv":
        return np.loadtxt(path, delimiter=",")
    raise SystemExit(f"unsupported demand file type: {path} (use .npy or .csv)")


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #


def cmd_compare(args) -> int:
    params = _params(args)
    config = ExperimentConfig(
        workload=_workload(args.workload, params, args.skewed_ports),
        params=params,
        scheduler=args.scheduler,
        n_trials=args.trials,
        seed=args.seed,
    )
    result = run_comparison(config)
    rows = [
        ["completion total (ms)", result.h_completion_total.mean, result.cp_completion_total.mean],
        ["completion o2m (ms)", result.h_completion_o2m.mean, result.cp_completion_o2m.mean],
        ["completion m2o (ms)", result.h_completion_m2o.mean, result.cp_completion_m2o.mean],
        ["OCS fraction in window", result.h_ocs_fraction.mean, result.cp_ocs_fraction.mean],
        ["OCS configurations", result.h_configs.mean, result.cp_configs.mean],
        ["scheduler time (ms)", result.h_sched_seconds.mean * 1e3, result.cp_sched_seconds.mean * 1e3],
    ]
    title = (
        f"{args.workload} workload, radix {args.radix}, {args.ocs} OCS, "
        f"{args.scheduler}, {result.n_trials} trials"
    )
    print(format_table(["metric", "h-Switch", "cp-Switch"], rows, title=title))
    return 0


def cmd_figure(args) -> int:
    from repro.analysis import figures

    generator = {
        "fig5": figures.figure5,
        "fig6": figures.figure6,
        "fig7": figures.figure7,
        "fig8": figures.figure8,
        "fig9": figures.figure9,
        "fig10": figures.figure10,
        "fig11": figures.figure11,
    }[args.name]
    radices = tuple(int(part) for part in args.radices.split(","))
    points = generator(args.ocs, radices=radices, n_trials=args.trials, seed=args.seed)
    utilization = args.name in ("fig6", "fig8", "fig10")
    rows = []
    for point in points:
        res = point.result
        prefix = [point.n_ports] + ([point.skewed_ports] if point.skewed_ports is not None else [])
        if utilization:
            rows.append(prefix + [res.h_ocs_fraction.mean, res.cp_ocs_fraction.mean,
                                  res.h_configs.mean, res.cp_configs.mean])
        else:
            rows.append(prefix + [res.h_completion_total.mean, res.cp_completion_total.mean,
                                  res.h_configs.mean, res.cp_configs.mean])
    headers = ["radix"] + (["k"] if args.name == "fig11" else [])
    headers += (
        ["h OCS fraction", "cp OCS fraction"] if utilization else ["h total (ms)", "cp total (ms)"]
    )
    headers += ["h configs", "cp configs"]
    print(
        format_table(
            headers, rows, title=f"{args.name} ({args.ocs} OCS, {args.trials} trials)"
        )
    )
    return 0


def cmd_workload(args) -> int:
    params = _params(args)
    workload = _workload(args.workload, params, args.skewed_ports)
    spec = workload.generate(args.radix, np.random.default_rng(args.seed))
    out = Path(args.out)
    if out.suffix == ".npy":
        np.save(out, spec.demand)
    elif out.suffix == ".csv":
        np.savetxt(out, spec.demand, delimiter=",")
    else:
        raise SystemExit(f"unsupported output type: {out} (use .npy or .csv)")
    print(
        f"wrote {args.radix}x{args.radix} {args.workload} demand "
        f"({spec.total_volume:.1f} Mb, {int((spec.demand > 0).sum())} entries) to {out}"
    )
    return 0


def cmd_schedule(args) -> int:
    demand = _load_demand(Path(args.demand))
    params = _params(argparse.Namespace(ocs=args.ocs, radix=demand.shape[0]))
    inner = make_scheduler(args.scheduler)
    if args.switch == "h":
        schedule = inner.schedule(demand, params)
        result = simulate_hybrid(demand, schedule, params)
        configs = [
            (entry.circuits, entry.duration) for entry in schedule
        ]
    else:
        cp_schedule = CpSwitchScheduler(inner).schedule(demand, params)
        result = simulate_cp(demand, cp_schedule, params)
        configs = []
        for entry in cp_schedule:
            rows, cols = np.nonzero(entry.regular)
            circuits = list(zip(rows.tolist(), cols.tolist()))
            grants = []
            if entry.o2m_port is not None:
                grants.append(f"o2m@{entry.o2m_port}")
            if entry.m2o_port is not None:
                grants.append(f"m2o@{entry.m2o_port}")
            configs.append((circuits + grants, entry.duration))

    print(f"{args.switch}-Switch / {args.scheduler} on {demand.shape[0]} ports:")
    for index, (circuits, duration) in enumerate(configs):
        print(f"  config {index}: {duration:.4f} ms, {circuits}")
    print(
        f"completion {result.completion_time:.3f} ms over {result.n_configs} configurations "
        f"(makespan {result.makespan:.3f} ms)"
    )
    return 0


def cmd_robustness(args) -> int:
    from repro.analysis.figures import degradation_curve
    from repro.analysis.robustness import robustness_trial
    from repro.hybrid.solstice import SolsticeScheduler
    from repro.utils.rng import spawn_rngs
    from repro.workloads import SkewedWorkload

    params = _params(args)
    fault_rates = tuple(float(part) for part in args.fault_rates.split(","))
    error_rates = tuple(float(part) for part in args.error_rates.split(","))

    points = degradation_curve(
        args.ocs,
        radix=args.radix,
        fault_rates=fault_rates,
        n_trials=args.trials,
        seed=args.seed,
    )
    fault_rows = [
        [
            point.fault_rate,
            point.h_completion,
            point.cp_completion,
            point.cp_advantage,
            point.released_composite,
        ]
        for point in points
    ]
    print(
        format_table(
            ["fault rate", "h total (ms)", "cp total (ms)", "h/cp", "released (Mb)"],
            fault_rows,
            title=(
                f"hardware fault sweep — skewed workload, radix {args.radix}, "
                f"{args.ocs} OCS, solstice, {args.trials} trials"
            ),
        )
    )

    workload = SkewedWorkload.for_params(params)
    scheduler = SolsticeScheduler()
    demands = [
        workload.generate(args.radix, rng).demand
        for rng in spawn_rngs(args.seed, args.trials)
    ]
    error_rows = []
    for error in error_rates:
        h_times, cp_times = [], []
        for trial, demand in enumerate(demands):
            h_result, cp_result = robustness_trial(
                demand,
                scheduler,
                params,
                np.random.default_rng(args.seed + trial),
                noise=error,
                staleness=error,
                miss_rate=error,
            )
            h_times.append(h_result.completion_time)
            cp_times.append(cp_result.completion_time)
        h_mean = float(np.mean(h_times))
        cp_mean = float(np.mean(cp_times))
        error_rows.append(
            [error, h_mean, cp_mean, h_mean / cp_mean if cp_mean else float("inf")]
        )
    print()
    print(
        format_table(
            ["error", "h total (ms)", "cp total (ms)", "h/cp"],
            error_rows,
            title=(
                "estimation-error sweep (noise = staleness = miss rate) — "
                f"radix {args.radix}, {args.ocs} OCS"
            ),
        )
    )
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Composite-path switching (CoNEXT'16) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--ocs", choices=("fast", "slow"), default="fast")
        p.add_argument("--radix", type=int, default=32)
        p.add_argument("--seed", type=int, default=2016)

    compare = sub.add_parser("compare", help="h-Switch vs cp-Switch on a paper workload")
    common(compare)
    compare.add_argument("--workload", choices=WORKLOADS, default="skewed")
    compare.add_argument("--scheduler", choices=("solstice", "eclipse", "tdm"), default="solstice")
    compare.add_argument("--trials", type=int, default=3)
    compare.add_argument("--skewed-ports", type=int, default=1)
    compare.set_defaults(func=cmd_compare)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument(
        "name",
        choices=("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"),
    )
    figure.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    figure.add_argument("--radices", default="32,64,128", help="comma-separated radix sweep")
    figure.add_argument("--trials", type=int, default=2)
    figure.add_argument("--seed", type=int, default=2016)
    figure.set_defaults(func=cmd_figure)

    workload = sub.add_parser("workload", help="sample a demand matrix to a file")
    common(workload)
    workload.add_argument("--workload", choices=WORKLOADS, default="typical")
    workload.add_argument("--skewed-ports", type=int, default=1)
    workload.add_argument("--out", required=True, help="output path (.npy or .csv)")
    workload.set_defaults(func=cmd_workload)

    robustness = sub.add_parser(
        "robustness",
        help="fault-injection + estimation-error degradation sweeps (h vs cp)",
    )
    common(robustness)
    robustness.add_argument("--trials", type=int, default=2)
    robustness.add_argument(
        "--fault-rates",
        default="0,0.05,0.1,0.2,0.4",
        help="comma-separated uniform fault rates to sweep",
    )
    robustness.add_argument(
        "--error-rates",
        default="0,0.1,0.3",
        help="comma-separated estimation-error levels (applied as noise, staleness and miss rate)",
    )
    robustness.set_defaults(func=cmd_robustness)

    schedule = sub.add_parser("schedule", help="schedule a demand matrix from a file")
    schedule.add_argument("demand", help="demand matrix file (.npy or .csv)")
    schedule.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    schedule.add_argument("--switch", choices=("h", "cp"), default="cp")
    schedule.add_argument("--scheduler", choices=("solstice", "eclipse", "tdm"), default="solstice")
    schedule.set_defaults(func=cmd_schedule)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
