"""Command-line interface: ``python -m repro <command>``.

Gives the library a no-code surface for the common workflows:

* ``compare``  — run the h-Switch vs cp-Switch comparison on one of the
  paper's workloads and print the aggregated metrics;
* ``figure``   — regenerate one of the paper's figures (radix sweep);
* ``schedule`` — schedule a demand matrix from a ``.npy``/``.csv`` file
  and print the resulting configurations;
* ``workload`` — sample a demand matrix from one of the paper's models
  and write it to a file (for feeding external tools or ``schedule``);
* ``robustness`` — degradation under imperfection: a hardware fault sweep
  (h vs cp completion versus injected fault rate, with the volume failed
  over from dead composite paths) followed by a demand-estimation-error
  sweep (noise / staleness / missed entries);
* ``sweep``    — the same sweeps under explicit journal control, plus
  ``sweep --resume <journal>`` to finish an interrupted run;
* ``serve``    — the continuous scheduling service loop: async arrival
  ingestion into the closed-loop epoch controller, per-epoch auxiliary
  stages sharded across a warm worker pool, drain-on-SIGTERM.

Resilient execution
-------------------
Every sweep command (``compare`` / ``figure`` / ``robustness``) runs
through the crash-tolerant runner (:mod:`repro.runner`) by default: trial
results are checkpointed to an atomic JSONL journal (auto-derived from the
sweep's arguments under ``--run-dir`` / ``$REPRO_RUN_DIR``, default
``runs/``), each trial executes in a subprocess worker with optional
``--timeout`` and bounded ``--retries`` with exponential backoff, and a
trial that exhausts its retries is quarantined as a reproducible ``.npz``
instead of aborting the sweep.  Re-running the same command — or
``python -m repro sweep --resume <journal>`` — skips completed trials and
finishes only the remainder, aggregating bit-identically to an
uninterrupted run.

Examples
--------
::

    python -m repro compare --workload skewed --scheduler solstice \
        --ocs fast --radix 64 --trials 5
    python -m repro figure fig5 --ocs fast --radices 32,64 --trials 3
    python -m repro workload --workload typical --radix 32 --out demand.npy
    python -m repro schedule demand.npy --switch cp --scheduler eclipse
    python -m repro robustness --radix 32 --trials 2 \
        --fault-rates 0,0.1,0.3 --error-rates 0,0.1,0.3
    python -m repro sweep compare --radix 32 --trials 20 --journal run.jsonl
    python -m repro sweep --resume run.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import math
import sys
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.experiment import make_workload
from repro.analysis.report import format_table
from repro.analysis.sweeps import (
    compare_specs,
    comparison_points,
    default_run_dir,
    figure_specs,
    group_payloads,
    robustness_specs,
    single_comparison,
    sweep_fingerprint,
)
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.base import make_scheduler
from repro.runner import (
    RetryPolicy,
    RunJournal,
    SweepConfig,
    SweepResult,
    SweepRunner,
    specs_from_journal,
)
from repro.obs.summarize import (
    TraceParseError,
    load_trace_or_snapshot,
    render_summary,
)
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams, ocs_params
from repro.utils.fileio import atomic_write_json, atomic_write_text
from repro.utils.validation import check_demand_matrix

WORKLOADS = ("skewed", "background", "typical", "intensive", "varying")

#: Default sharded arms for `serve` (import-light: keep cli startup cheap).
DEFAULT_SERVICE_ARMS = ("eclipse", "tdm")


def _params(args) -> SwitchParams:
    return ocs_params(args.ocs, args.radix)


def _workload(name: str, params: SwitchParams, skewed_ports: int):
    return make_workload(name, params, skewed_ports)


def _load_demand(path: Path) -> np.ndarray:
    if path.suffix == ".npy":
        try:
            demand = np.load(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read demand file {path}: {exc}") from None
    elif path.suffix == ".csv":
        try:
            demand = np.loadtxt(path, delimiter=",")
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read demand file {path}: {exc}") from None
    else:
        raise SystemExit(f"unsupported demand file type: {path} (use .npy or .csv)")
    try:
        # Rejects NaN/Inf, negative entries and non-square shapes up front,
        # with one actionable line instead of a traceback from deep inside
        # the scheduler.
        return check_demand_matrix(np.atleast_2d(np.asarray(demand, dtype=np.float64)))
    except ValueError as exc:
        raise SystemExit(
            f"invalid demand file {path}: {exc} — fix the file or regenerate "
            "it with `python -m repro workload`"
        ) from None


# ---------------------------------------------------------------------- #
# runner plumbing
# ---------------------------------------------------------------------- #


def _journal_for(args, kind: str, sweep_args: dict) -> RunJournal:
    """The journal this sweep checkpoints to (resumable-by-default).

    ``--journal`` pins an explicit path; otherwise the path is derived from
    the sweep's arguments so re-running the identical command resumes its
    own journal.  ``--no-journal`` opts out (in-memory, not resumable);
    ``--fresh`` discards an existing journal first.
    """
    if getattr(args, "no_journal", False):
        return RunJournal()
    if getattr(args, "journal", None):
        path = Path(args.journal)
    else:
        run_dir = Path(args.run_dir) if getattr(args, "run_dir", None) else default_run_dir()
        path = run_dir / f"{kind}-{sweep_fingerprint(kind, sweep_args)}.jsonl"
    if getattr(args, "fresh", False) and path.exists():
        path.unlink()
    return RunJournal(path)


def _check_positive_budget(value, flag: str, unit: str = "seconds"):
    """Validate a wall-clock budget flag: positive and finite-or-inf, never
    zero, negative, or NaN — those silently disable or wedge the run.

    Returns the value as ``float`` (``None`` passes through untouched).
    """
    if value is None:
        return None
    value = float(value)
    if math.isnan(value) or value <= 0:
        raise SystemExit(
            f"{flag} must be a positive number of {unit}, got {value:g}; "
            f"drop the flag to run without a budget"
        )
    return value


def _sweep_config(args) -> SweepConfig:
    retries = getattr(args, "retries", 2)
    if retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {retries}")
    return SweepConfig(
        timeout_s=_check_positive_budget(getattr(args, "timeout", None), "--timeout"),
        retry=RetryPolicy(
            max_attempts=retries + 1,
            base_delay=getattr(args, "retry_base_delay", 0.1),
        ),
        isolation=getattr(args, "isolation", "subprocess"),
        heartbeat=not getattr(args, "no_heartbeat", False),
    )


def _run_sweep(args, kind: str, sweep_args: dict, specs) -> "tuple[SweepResult, RunJournal]":
    journal = _journal_for(args, kind, sweep_args)
    runner = SweepRunner(journal, _sweep_config(args))
    already = journal.completed_keys() & {spec.key for spec in specs}
    if already:
        print(
            f"resuming from {journal.path}: {len(already)}/{len(specs)} trials "
            "already journaled",
            file=sys.stderr,
        )
    result = runner.run(
        specs,
        sweep_name=f"{kind}-{sweep_fingerprint(kind, sweep_args)}",
        meta={"kind": kind, "args": sweep_args},
    )
    _report_failures(result, journal)
    return result, journal


def _report_failures(result: SweepResult, journal: RunJournal) -> None:
    if not result.failures:
        return
    print(
        f"warning: {len(result.failures)} trial(s) failed after retries "
        "(sweep continued over the survivors):",
        file=sys.stderr,
    )
    for failure in result.failures:
        where = f" [repro: {failure.quarantine_path}]" if failure.quarantine_path else ""
        print(
            f"  {failure.key}: {failure.error_type}: {failure.error_message}{where}",
            file=sys.stderr,
        )


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #


def _print_compare(sweep_args: dict, specs, completed: dict) -> None:
    result = single_comparison(specs, completed)
    rows = [
        ["completion total (ms)", result.h_completion_total.mean, result.cp_completion_total.mean],
        ["completion o2m (ms)", result.h_completion_o2m.mean, result.cp_completion_o2m.mean],
        ["completion m2o (ms)", result.h_completion_m2o.mean, result.cp_completion_m2o.mean],
        ["OCS fraction in window", result.h_ocs_fraction.mean, result.cp_ocs_fraction.mean],
        ["OCS configurations", result.h_configs.mean, result.cp_configs.mean],
        ["scheduler time (ms)", result.h_sched_seconds.mean * 1e3, result.cp_sched_seconds.mean * 1e3],
    ]
    title = (
        f"{sweep_args['workload']} workload, radix {sweep_args['radix']}, "
        f"{sweep_args['ocs']} OCS, {sweep_args['scheduler']}, "
        f"{result.n_trials} trials"
    )
    print(format_table(["metric", "h-Switch", "cp-Switch"], rows, title=title))


def cmd_compare(args) -> int:
    sweep_args = {
        "workload": args.workload,
        "ocs": args.ocs,
        "radix": args.radix,
        "scheduler": args.scheduler,
        "trials": args.trials,
        "seed": args.seed,
        "skewed_ports": args.skewed_ports,
    }
    specs = compare_specs(**sweep_args)
    result, _journal = _run_sweep(args, "compare", sweep_args, specs)
    if not result.completed:
        print("error: every trial failed; nothing to aggregate", file=sys.stderr)
        return 1
    _print_compare(sweep_args, specs, result.completed)
    return 0


def _print_figure(sweep_args: dict, specs, completed: dict) -> None:
    name = sweep_args["name"]
    utilization = name in ("fig6", "fig8", "fig10")
    rows = []
    for experiment, point in comparison_points(specs, completed):
        if point is None:
            print(f"warning: {experiment}: all trials failed; point omitted", file=sys.stderr)
            continue
        res = point.result
        prefix = [point.n_ports] + ([point.skewed_ports] if point.skewed_ports is not None else [])
        if utilization:
            rows.append(prefix + [res.h_ocs_fraction.mean, res.cp_ocs_fraction.mean,
                                  res.h_configs.mean, res.cp_configs.mean])
        else:
            rows.append(prefix + [res.h_completion_total.mean, res.cp_completion_total.mean,
                                  res.h_configs.mean, res.cp_configs.mean])
    headers = ["radix"] + (["k"] if name == "fig11" else [])
    headers += (
        ["h OCS fraction", "cp OCS fraction"] if utilization else ["h total (ms)", "cp total (ms)"]
    )
    headers += ["h configs", "cp configs"]
    print(
        format_table(
            headers,
            rows,
            title=f"{name} ({sweep_args['ocs']} OCS, {sweep_args['trials']} trials)",
        )
    )


def cmd_figure(args) -> int:
    radices = tuple(int(part) for part in args.radices.split(","))
    sweep_args = {
        "name": args.name,
        "ocs": args.ocs,
        "radices": list(radices),
        "trials": args.trials,
        "seed": args.seed,
    }
    specs = figure_specs(
        args.name, ocs=args.ocs, radices=radices, trials=args.trials, seed=args.seed
    )
    result, _journal = _run_sweep(args, "figure", sweep_args, specs)
    if not result.completed:
        print("error: every trial failed; nothing to aggregate", file=sys.stderr)
        return 1
    _print_figure(sweep_args, specs, result.completed)
    return 0


def cmd_workload(args) -> int:
    params = _params(args)
    workload = _workload(args.workload, params, args.skewed_ports)
    spec = workload.generate(args.radix, np.random.default_rng(args.seed))
    out = Path(args.out)
    if out.suffix == ".npy":
        np.save(out, spec.demand)
    elif out.suffix == ".csv":
        np.savetxt(out, spec.demand, delimiter=",")
    else:
        raise SystemExit(f"unsupported output type: {out} (use .npy or .csv)")
    print(
        f"wrote {args.radix}x{args.radix} {args.workload} demand "
        f"({spec.total_volume:.1f} Mb, {int((spec.demand > 0).sum())} entries) to {out}"
    )
    return 0


def cmd_schedule(args) -> int:
    demand = _load_demand(Path(args.demand))
    params = ocs_params(args.ocs, demand.shape[0])
    inner = make_scheduler(args.scheduler)
    if args.switch == "h":
        schedule = inner.schedule(demand, params)
        result = simulate_hybrid(demand, schedule, params)
        configs = [
            (entry.circuits, entry.duration) for entry in schedule
        ]
    else:
        cp_schedule = CpSwitchScheduler(inner).schedule(demand, params)
        result = simulate_cp(demand, cp_schedule, params)
        configs = []
        for entry in cp_schedule:
            rows, cols = np.nonzero(entry.regular)
            circuits = list(zip(rows.tolist(), cols.tolist()))
            grants = []
            if entry.o2m_port is not None:
                grants.append(f"o2m@{entry.o2m_port}")
            if entry.m2o_port is not None:
                grants.append(f"m2o@{entry.m2o_port}")
            configs.append((circuits + grants, entry.duration))

    for diag in getattr(inner, "last_diagnostics", []):
        print(f"scheduler watchdog: {diag.event}: {diag.detail}", file=sys.stderr)
    print(f"{args.switch}-Switch / {args.scheduler} on {demand.shape[0]} ports:")
    for index, (circuits, duration) in enumerate(configs):
        print(f"  config {index}: {duration:.4f} ms, {circuits}")
    print(
        f"completion {result.completion_time:.3f} ms over {result.n_configs} configurations "
        f"(makespan {result.makespan:.3f} ms)"
    )
    return 0


def _fallback_histogram(payloads: "list[dict]") -> str:
    """Merge per-trial fallback histograms into one ``L0×3 L1×2``-style cell."""
    merged: "dict[int, int]" = {}
    for payload in payloads:
        for level, count in payload.get("fallbacks", {}).items():
            merged[int(level)] = merged.get(int(level), 0) + int(count)
    return " ".join(f"L{level}×{merged[level]}" for level in sorted(merged)) or "-"


def _print_robustness(sweep_args: dict, specs, completed: dict) -> None:
    groups = group_payloads(specs, completed)
    fault_rows = []
    error_rows = []
    reroute_rows = []
    deadline_rows = []
    for experiment, payloads in groups.items():
        if not payloads:
            print(f"warning: {experiment}: all trials failed; point omitted", file=sys.stderr)
            continue
        if experiment.startswith("deadline-"):
            served = float(np.mean([p["served"] for p in payloads]))
            served_unbounded = float(np.mean([p["served_unbounded"] for p in payloads]))
            cct = float(np.mean([p["cct"] for p in payloads]))
            cct_unbounded = float(np.mean([p["cct_unbounded"] for p in payloads]))
            deadline_rows.append(
                [
                    payloads[0]["deadline_ms"],
                    float(np.mean([p["miss_rate"] for p in payloads])),
                    _fallback_histogram(payloads),
                    served / served_unbounded if served_unbounded else 1.0,
                    cct - cct_unbounded,
                    float(np.mean([p["schedule_ms"] for p in payloads])),
                ]
            )
        elif experiment.startswith("fault-"):
            h_mean = float(np.mean([p["h"] for p in payloads]))
            cp_mean = float(np.mean([p["cp"] for p in payloads]))
            fault_rows.append(
                [
                    payloads[0]["rate"],
                    h_mean,
                    cp_mean,
                    h_mean / cp_mean if cp_mean else float("inf"),
                    float(np.mean([p["released"] for p in payloads])),
                ]
            )
        elif experiment.startswith("reroute-"):
            degrade = float(np.mean([p["degrade_stranded"] for p in payloads]))
            reroute = float(np.mean([p["reroute_stranded"] for p in payloads]))
            recoveries = [p["recovery_ms"] for p in payloads if p["swaps"]]
            reroute_rows.append(
                [
                    payloads[0]["rate"],
                    degrade,
                    reroute,
                    degrade - reroute,
                    float(np.mean([p["swaps"] for p in payloads])),
                    float(np.mean(recoveries)) if recoveries else 0.0,
                ]
            )
        else:
            h_mean = float(np.mean([p["h"] for p in payloads]))
            cp_mean = float(np.mean([p["cp"] for p in payloads]))
            error_rows.append(
                [
                    payloads[0]["error"],
                    h_mean,
                    cp_mean,
                    h_mean / cp_mean if cp_mean else float("inf"),
                ]
            )
    radix = sweep_args["radix"]
    ocs = sweep_args["ocs"]
    print(
        format_table(
            ["fault rate", "h total (ms)", "cp total (ms)", "h/cp", "released (Mb)"],
            fault_rows,
            title=(
                f"hardware fault sweep — skewed workload, radix {radix}, "
                f"{ocs} OCS, solstice, {sweep_args['trials']} trials"
            ),
        )
    )
    print()
    print(
        format_table(
            ["error", "h total (ms)", "cp total (ms)", "h/cp"],
            error_rows,
            title=(
                "estimation-error sweep (noise = staleness = miss rate) — "
                f"radix {radix}, {ocs} OCS"
            ),
        )
    )
    if reroute_rows:
        print()
        print(
            format_table(
                [
                    "outage rate",
                    "degrade stranded (Mb)",
                    "reroute stranded (Mb)",
                    "delta (Mb)",
                    "swaps",
                    "recovery (ms)",
                ],
                reroute_rows,
                title=(
                    "fast-reroute vs degrade-to-EPS — skewed workload, "
                    f"radix {radix}, {ocs} OCS, solstice, {sweep_args['trials']} trials"
                ),
            )
        )
    if deadline_rows:
        print()
        print(
            format_table(
                [
                    "deadline (ms)",
                    "miss rate",
                    "fallbacks",
                    "served / unbounded",
                    "CCT delta (ms)",
                    "sched (ms)",
                ],
                deadline_rows,
                title=(
                    "deadline-aware anytime scheduling vs unbounded — skewed "
                    f"workload, radix {radix}, {ocs} OCS, solstice, "
                    f"{sweep_args['trials']} trials"
                ),
            )
        )


def cmd_robustness(args) -> int:
    fault_rates = tuple(float(part) for part in args.fault_rates.split(","))
    error_rates = tuple(float(part) for part in args.error_rates.split(","))
    deadlines = tuple(
        _check_positive_budget(part, "--deadline", unit="milliseconds")
        for part in args.deadline.split(",")
        if part.strip()
    )
    # Fail fast on bad sweep axes instead of journaling one doomed trial
    # per point.
    for rate in fault_rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    for error in error_rates:
        if not 0.0 <= error <= 1.0:
            raise ValueError(f"error rate must be in [0, 1], got {error}")
    sweep_args = {
        "ocs": args.ocs,
        "radix": args.radix,
        "trials": args.trials,
        "seed": args.seed,
        "fault_rates": list(fault_rates),
        "error_rates": list(error_rates),
        "fast_reroute": bool(args.fast_reroute),
        "deadlines": list(deadlines),
    }
    specs = robustness_specs(
        ocs=args.ocs,
        radix=args.radix,
        trials=args.trials,
        seed=args.seed,
        fault_rates=fault_rates,
        error_rates=error_rates,
        reroute=args.fast_reroute,
        deadlines=deadlines,
    )
    result, _journal = _run_sweep(args, "robustness", sweep_args, specs)
    if not result.completed:
        print("error: every trial failed; nothing to aggregate", file=sys.stderr)
        return 1
    _print_robustness(sweep_args, specs, result.completed)
    return 0


def cmd_sweep(args) -> int:
    """``sweep --resume <journal>``: finish an interrupted sweep."""
    if not getattr(args, "resume", None):
        raise SystemExit(
            "sweep: give a sub-command (compare / figure / robustness) "
            "or --resume <journal>"
        )
    path = Path(args.resume)
    if not path.exists():
        raise SystemExit(f"sweep --resume: journal {path} does not exist")
    journal = RunJournal(path)
    specs = specs_from_journal(journal)
    header = journal.header
    meta = header.get("meta", {}) if header else {}
    done_before = len(journal.completed_keys())
    runner = SweepRunner(journal, _sweep_config(args))
    result = runner.run(specs, sweep_name=header["sweep"], meta=meta)
    _report_failures(result, journal)
    print(
        f"resumed {path}: {done_before} trials restored, "
        f"{len(result.executed)} executed now, {result.n_failed} failed total",
        file=sys.stderr,
    )
    if not result.completed:
        print("error: every trial failed; nothing to aggregate", file=sys.stderr)
        return 1
    kind = meta.get("kind")
    sweep_args = meta.get("args", {})
    if kind == "compare":
        _print_compare(sweep_args, specs, result.completed)
    elif kind == "figure":
        _print_figure(sweep_args, specs, result.completed)
    elif kind == "robustness":
        _print_robustness(sweep_args, specs, result.completed)
    else:
        print(f"{len(result.completed)}/{len(specs)} trials complete")
    return 0


def cmd_serve(args) -> int:
    """``serve``: run the scheduling service loop for N epochs."""
    import asyncio
    import signal

    from repro.analysis.controller import EpochController
    from repro.service import SchedulingService, ServiceConfig
    from repro.workloads.arrivals import WorkloadArrivals

    params = _params(args)
    use_cp = args.switch == "cp"
    deadline_s = None
    if args.deadline is not None:
        deadline_s = (
            _check_positive_budget(args.deadline, "--deadline", unit="milliseconds")
            / 1e3
        )
        if not use_cp:
            raise SystemExit("serve: --deadline requires --switch cp")
    arrivals = WorkloadArrivals(
        _workload(args.workload, params, args.skewed_ports),
        n_ports=params.n_ports,
        seed=args.seed,
        intensity=args.intensity,
    )
    journal = RunJournal(args.journal) if getattr(args, "journal", None) else None
    controller = EpochController(
        params=params,
        scheduler=make_scheduler(args.scheduler),
        use_composite_paths=use_cp,
        epoch_duration=args.epoch_ms,
        journal=journal,
        deadline_s=deadline_s,
        max_backlog=args.max_backlog,
        overflow_policy=args.overflow,
    )
    arms = tuple(
        part.strip() for part in (args.arms or "").split(",") if part.strip()
    )
    config = ServiceConfig(
        n_epochs=args.epochs,
        n_workers=args.workers,
        queue_depth=args.queue_depth,
        epoch_interval_s=args.interval,
        arms=arms,
        shard_backups=use_cp and not args.no_backups,
        drain=not args.no_drain,
        telemetry_port=args.telemetry_port,
        telemetry_host=args.telemetry_host,
        incidents_dir=args.incidents_dir,
        recorder_epochs=args.recorder_epochs,
    )
    service = SchedulingService(controller, arrivals, config)
    # A scrape endpoint over the null registry would serve an empty page;
    # --telemetry-port implies live backends for the run unless --trace /
    # --metrics (main()) already installed some.
    if args.telemetry_port is not None and not obs.active():
        live_backends = obs.observability(
            tracer=obs.JsonlTracer(), metrics=obs.MetricsRegistry()
        )
    else:
        live_backends = contextlib.nullcontext()
    with live_backends:
        if args.sync:
            report = service.run_sync()
        else:

            async def _serve():
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGINT, signal.SIGTERM):
                    # Drain, then exit cleanly — a deploy rollout must never
                    # strand queued demand.
                    try:
                        loop.add_signal_handler(signum, service.request_stop)
                    except (NotImplementedError, RuntimeError):
                        pass
                return await service.run()

            report = asyncio.run(_serve())

    rows = [
        [
            outcome.report.epoch,
            outcome.report.offered_volume,
            outcome.report.served_volume,
            outcome.report.backlog_after,
            outcome.report.shed_volume,
            "yes" if outcome.report.deadline_hit else "no",
            outcome.report.fallback_level,
            outcome.epoch_latency_s * 1e3,
            len(outcome.arms),
            len(outcome.shard_pids),
        ]
        for outcome in report.outcomes
    ]
    print(
        format_table(
            [
                "epoch",
                "offered (Mb)",
                "served (Mb)",
                "backlog (Mb)",
                "shed (Mb)",
                "miss",
                "fallback",
                "latency (ms)",
                "arms",
                "shards",
            ],
            rows,
            title=(
                f"scheduling service — {args.workload} workload, radix "
                f"{args.radix}, {args.scheduler}, {config.n_workers} workers"
            ),
        )
    )
    print(
        f"served {report.n_epochs} epoch(s): admitted {report.admitted_mb:.1f} Mb, "
        f"shed {report.shed_mb:.1f} Mb, parked {report.parked_mb:.1f} Mb, "
        f"backlog {report.backlog_mb:.1f} Mb; "
        f"{report.slo_violations} SLO violation(s), "
        f"{report.stage_retries} stage retrie(s), "
        f"{len(report.worker_pids)} warm worker(s)"
        + ("" if report.drained else "; stopped WITHOUT draining"),
        file=sys.stderr,
    )
    if report.incident_bundles:
        print(
            f"serve: flight recorder dumped {len(report.incident_bundles)} "
            f"incident bundle(s) — inspect with `python -m repro obs incidents "
            f"{Path(report.incident_bundles[0]).parent}`",
            file=sys.stderr,
        )
    if report.stopped_early:
        print("serve: stopped early on request (drained queued epochs)", file=sys.stderr)
    return 0


def _load_obs_file(path: "str | Path", command: str):
    """Load a trace/snapshot for an obs subcommand with one-line errors."""
    path = Path(path)
    if not path.exists():
        raise SystemExit(f"obs {command}: file {path} does not exist")
    try:
        return load_trace_or_snapshot(path)
    except TraceParseError as exc:
        raise SystemExit(f"obs {command}: {exc}") from None


def cmd_obs_summarize(args) -> int:
    data = _load_obs_file(args.trace_file, "summarize")
    print(render_summary(data, top=args.top, max_depth=args.depth))
    return 0


def cmd_obs_diff(args) -> int:
    from repro.obs.diff import diff_traces, diff_to_json, render_diff

    a = _load_obs_file(args.trace_a, "diff")
    b = _load_obs_file(args.trace_b, "diff")
    diff = diff_traces(a, b)
    print(render_diff(diff, top=args.top))
    if args.json:
        atomic_write_json(diff_to_json(diff), args.json)
        print(f"diff JSON written to {args.json}", file=sys.stderr)
    if args.fail_on_drift and diff.has_quality_drift:
        print(
            f"obs diff: {len(diff.quality_drift)} schedule-quality metric(s) "
            "drifted (--fail-on-drift)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_obs_watch(args) -> int:
    from repro.obs.watch import watch

    path = Path(args.journal)
    if not path.exists():
        raise SystemExit(f"obs watch: journal {path} does not exist")
    try:
        watch(path, follow=args.follow, interval_s=args.interval)
    except ValueError as exc:
        raise SystemExit(f"obs watch: {exc}") from None
    except KeyboardInterrupt:
        return 130
    return 0


def cmd_obs_incidents(args) -> int:
    from repro.obs.incidents import (
        load_incident,
        render_incident,
        render_incident_listing,
    )

    path = Path(args.path)
    if not path.exists():
        raise SystemExit(f"obs incidents: {path} does not exist")
    if path.is_dir():
        print(render_incident_listing(path))
        return 0
    try:
        bundle = load_incident(path)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"obs incidents: {exc}") from None
    print(render_incident(bundle, top=args.top, max_depth=args.depth))
    return 0


def cmd_obs_export(args) -> int:
    from repro.obs.export import render_openmetrics

    data = _load_obs_file(args.source, "export")
    if not data.metrics:
        raise SystemExit(
            f"obs export: {args.source} carries no metrics snapshot — "
            "record one with --metrics (or --trace, which embeds it)"
        )
    text = render_openmetrics(data.metrics)
    if args.out:
        atomic_write_text(args.out, text)
        print(f"openmetrics written to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _parse_point_axes(args) -> "tuple[tuple[int, ...], tuple[str, ...]]":
    radices = tuple(int(part) for part in args.radices.split(","))
    schedulers = tuple(part.strip() for part in args.schedulers.split(","))
    for scheduler in schedulers:
        if scheduler not in ("solstice", "eclipse"):
            raise SystemExit(
                f"obs baseline: unknown scheduler {scheduler!r} "
                "(choose from solstice, eclipse)"
            )
    if getattr(args, "quick", False):
        radices = (min(radices),)
    return radices, schedulers


def cmd_obs_baseline_record(args) -> int:
    from repro.obs.baseline import record_baseline, write_baseline

    radices, schedulers = _parse_point_axes(args)
    repeats = 1 if args.quick else args.repeats
    trials = 1 if args.quick else args.trials
    payload = record_baseline(
        radices=radices,
        schedulers=schedulers,
        ocs=args.ocs,
        n_trials=trials,
        seed=args.seed,
        repeats=repeats,
    )
    write_baseline(payload, args.out)
    total = sum(point["timing_s"]["total"] for point in payload["points"])
    print(
        f"recorded {len(payload['points'])} baseline point(s) "
        f"({total:.2f}s pipeline time) to {args.out}"
    )
    return 0


def cmd_obs_check(args) -> int:
    from repro.obs.baseline import check_baseline, load_baseline, measure_like

    path = Path(args.baseline)
    if not path.exists():
        raise SystemExit(
            f"obs check: baseline {path} does not exist — record one with "
            "`python -m repro obs baseline record`"
        )
    try:
        baseline = load_baseline(path)
    except ValueError as exc:
        raise SystemExit(f"obs check: {exc}") from None
    if args.current:
        try:
            current = load_baseline(args.current)
        except ValueError as exc:
            raise SystemExit(f"obs check: {exc}") from None
    else:
        current = measure_like(baseline)
    violations = check_baseline(
        baseline, current, tolerance=args.tolerance, min_seconds=args.min_seconds
    )
    if violations:
        print(
            f"obs check: {len(violations)} violation(s) against {path}:",
            file=sys.stderr,
        )
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(
        f"obs check: {len(baseline.get('points', []))} point(s) within "
        f"{args.tolerance * 100:.0f}% of {path}, no schedule-quality drift"
    )
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #


def _add_obs_args(p) -> None:
    group = p.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        nargs="?",
        const="auto",
        help="record spans/events to this JSONL file (render it with "
        "`python -m repro obs summarize PATH`); without a path, defaults "
        "to <command>-trace.jsonl under --run-dir / $REPRO_RUN_DIR",
    )
    group.add_argument(
        "--metrics",
        metavar="PATH",
        nargs="?",
        const="auto",
        help="write the metrics-registry snapshot to this JSON file; "
        "without a path, defaults to <command>-metrics.json under "
        "--run-dir / $REPRO_RUN_DIR",
    )


def _add_runner_args(p) -> None:
    group = p.add_argument_group("resilient execution")
    group.add_argument(
        "--journal",
        metavar="PATH",
        help="run-journal path (default: derived from the sweep's arguments "
        "under --run-dir, so re-running the same command resumes)",
    )
    group.add_argument(
        "--run-dir",
        metavar="DIR",
        help="directory for auto-derived journals (default: $REPRO_RUN_DIR or ./runs)",
    )
    group.add_argument(
        "--no-journal",
        action="store_true",
        help="keep the journal in memory only (not resumable)",
    )
    group.add_argument(
        "--fresh",
        action="store_true",
        help="discard an existing journal and start the sweep over",
    )
    group.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per trial attempt (default: none)",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry attempts per trial after the first, with exponential "
        "backoff + jitter (default: 2)",
    )
    group.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="first backoff sleep (default: 0.1)",
    )
    group.add_argument(
        "--isolation",
        choices=("subprocess", "inline"),
        default="subprocess",
        help="run trials in subprocess workers (hang/crash-proof, default) "
        "or inline (debuggable)",
    )
    group.add_argument(
        "--no-heartbeat",
        action="store_true",
        help="skip the <journal>.hb/ heartbeat files `repro obs watch` tails",
    )


def _add_compare_args(p) -> None:
    p.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    p.add_argument("--radix", type=int, default=32)
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--workload", choices=WORKLOADS, default="skewed")
    p.add_argument("--scheduler", choices=("solstice", "eclipse", "tdm"), default="solstice")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--skewed-ports", type=int, default=1)
    _add_runner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_compare)


def _add_figure_args(p) -> None:
    p.add_argument(
        "name",
        choices=("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"),
    )
    p.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    p.add_argument("--radices", default="32,64,128", help="comma-separated radix sweep")
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--seed", type=int, default=2016)
    _add_runner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_figure)


def _add_robustness_args(p) -> None:
    p.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    p.add_argument("--radix", type=int, default=32)
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--trials", type=int, default=2)
    p.add_argument(
        "--fault-rates",
        default="0,0.05,0.1,0.2,0.4",
        help="comma-separated uniform fault rates to sweep",
    )
    p.add_argument(
        "--error-rates",
        default="0,0.1,0.3",
        help="comma-separated estimation-error levels (applied as noise, staleness and miss rate)",
    )
    p.add_argument(
        "--fast-reroute",
        action="store_true",
        help="add a fast-reroute-vs-degrade arm per fault rate (outage-only "
        "plans; reports stranded-volume and recovery-time deltas)",
    )
    p.add_argument(
        "--deadline",
        default="",
        metavar="MS",
        help="comma-separated wall-clock scheduling deadlines (ms): adds a "
        "deadline-aware anytime-controller arm per value (miss rate, "
        "fallback histogram, throughput/CCT deltas vs unbounded)",
    )
    _add_runner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_robustness)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Composite-path switching (CoNEXT'16) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--ocs", choices=("fast", "slow"), default="fast")
        p.add_argument("--radix", type=int, default=32)
        p.add_argument("--seed", type=int, default=2016)

    compare = sub.add_parser("compare", help="h-Switch vs cp-Switch on a paper workload")
    _add_compare_args(compare)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    _add_figure_args(figure)

    workload = sub.add_parser("workload", help="sample a demand matrix to a file")
    common(workload)
    workload.add_argument("--workload", choices=WORKLOADS, default="typical")
    workload.add_argument("--skewed-ports", type=int, default=1)
    workload.add_argument("--out", required=True, help="output path (.npy or .csv)")
    workload.set_defaults(func=cmd_workload)

    robustness = sub.add_parser(
        "robustness",
        help="fault-injection + estimation-error degradation sweeps (h vs cp)",
    )
    _add_robustness_args(robustness)

    schedule = sub.add_parser("schedule", help="schedule a demand matrix from a file")
    schedule.add_argument("demand", help="demand matrix file (.npy or .csv)")
    schedule.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    schedule.add_argument("--switch", choices=("h", "cp"), default="cp")
    schedule.add_argument("--scheduler", choices=("solstice", "eclipse", "tdm"), default="solstice")
    _add_obs_args(schedule)
    schedule.set_defaults(func=cmd_schedule)

    sweep = sub.add_parser(
        "sweep",
        help="journaled resumable sweeps; `sweep --resume <journal>` finishes "
        "an interrupted run",
    )
    sweep.add_argument("--resume", metavar="JOURNAL", help="journal of the sweep to finish")
    sweep.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="wall-clock budget per trial attempt"
    )
    sweep.add_argument("--retries", type=int, default=2, metavar="N")
    sweep.add_argument("--retry-base-delay", type=float, default=0.1, metavar="SECONDS")
    sweep.add_argument("--isolation", choices=("subprocess", "inline"), default="subprocess")
    _add_obs_args(sweep)
    sweep.set_defaults(func=cmd_sweep)
    sweep_sub = sweep.add_subparsers(dest="sweep_command")
    _add_compare_args(sweep_sub.add_parser("compare", help="journaled compare sweep"))
    _add_figure_args(sweep_sub.add_parser("figure", help="journaled figure sweep"))
    _add_robustness_args(sweep_sub.add_parser("robustness", help="journaled robustness sweep"))

    serve = sub.add_parser(
        "serve",
        help="run the continuous scheduling service loop (asyncio ingestion, "
        "monotonic epoch clock, warm-worker stage sharding)",
    )
    common(serve)
    serve.add_argument("--epochs", type=int, default=8, metavar="N")
    serve.add_argument(
        "--deadline",
        type=float,
        metavar="MS",
        help="per-epoch scheduling deadline (anytime fallback ladder)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="K", help="warm stage-worker pool size (0 disables sharding)"
    )
    serve.add_argument("--workload", choices=WORKLOADS, default="skewed")
    serve.add_argument("--skewed-ports", type=int, default=1)
    serve.add_argument("--scheduler", choices=("solstice", "eclipse", "tdm"), default="solstice")
    serve.add_argument("--switch", choices=("h", "cp"), default="cp")
    serve.add_argument("--intensity", type=float, default=1.0, help="arrival volume multiplier")
    serve.add_argument(
        "--epoch-ms", type=float, metavar="MS",
        help="simulated epoch length (default: run each schedule to completion)",
    )
    serve.add_argument(
        "--interval", type=float, default=0.0, metavar="SECONDS",
        help="monotonic epoch clock period (0 free-runs)",
    )
    serve.add_argument("--queue-depth", type=int, default=4, metavar="N")
    serve.add_argument(
        "--arms", default=",".join(DEFAULT_SERVICE_ARMS), metavar="NAMES",
        help="comma-separated independent scheduler arms to shard each epoch "
        "('' disables)",
    )
    serve.add_argument("--no-backups", action="store_true", help="skip the sharded backup-planning stage")
    serve.add_argument(
        "--max-backlog", type=float, metavar="MB",
        help="backpressure threshold (see controller overflow policy)",
    )
    serve.add_argument("--overflow", choices=("shed", "park"), default="shed")
    serve.add_argument("--no-drain", action="store_true", help="on stop, abandon queued batches instead of draining")
    serve.add_argument("--sync", action="store_true", help="synchronous driver (bit-identical to the controller loop)")
    serve.add_argument("--journal", metavar="PATH", help="append per-epoch records to this journal")
    telemetry = serve.add_argument_group("live telemetry")
    telemetry.add_argument(
        "--telemetry-port", type=int, metavar="PORT",
        help="expose GET /metrics, /healthz, /status on this port while "
        "serving (0 binds an ephemeral port; default: off)",
    )
    telemetry.add_argument(
        "--telemetry-host", default="127.0.0.1", metavar="HOST",
        help="bind address for the telemetry server (default: 127.0.0.1)",
    )
    telemetry.add_argument(
        "--incidents-dir", metavar="DIR",
        help="flight-recorder bundle directory (default: <run dir>/incidents "
        "when telemetry is on)",
    )
    telemetry.add_argument(
        "--recorder-epochs", type=int, default=8, metavar="N",
        help="flight-recorder ring size: epochs of context per incident "
        "bundle (default: 8)",
    )
    _add_obs_args(serve)
    serve.set_defaults(func=cmd_serve)

    obs_parser = sub.add_parser("obs", help="observability tooling")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="render a --trace JSONL: span tree, events, top-k counters",
    )
    summarize.add_argument("trace_file", help="trace file written by --trace")
    summarize.add_argument(
        "--top", type=int, default=10, help="counters/event groups to show (default: 10)"
    )
    summarize.add_argument(
        "--depth", type=int, default=None, help="maximum span-tree depth (default: unlimited)"
    )
    summarize.set_defaults(func=cmd_obs_summarize)

    diff = obs_sub.add_parser(
        "diff",
        help="align two runs' span trees by path; report timing deltas and "
        "schedule-quality drift",
    )
    diff.add_argument("trace_a", help="baseline trace (or --metrics snapshot)")
    diff.add_argument("trace_b", help="comparison trace (or --metrics snapshot)")
    diff.add_argument(
        "--json", metavar="PATH", help="also write the machine-readable diff here"
    )
    diff.add_argument(
        "--top", type=int, default=10, help="counter/histogram deltas to show (default: 10)"
    )
    diff.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="exit nonzero if any schedule-quality counter differs",
    )
    diff.set_defaults(func=cmd_obs_diff)

    watch = obs_sub.add_parser(
        "watch",
        help="tail a sweep journal + heartbeats: progress, ETA, stragglers "
        "(a service journal renders as a live service row)",
    )
    watch.add_argument("journal", help="sweep journal (heartbeats in <journal>.hb/)")
    watch.add_argument(
        "--follow",
        action="store_true",
        help="keep rendering until the sweep completes (Ctrl-C to stop)",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval with --follow (default: 2)",
    )
    watch.set_defaults(func=cmd_obs_watch)

    incidents = obs_sub.add_parser(
        "incidents",
        help="list a flight-recorder incident directory, or render one bundle "
        "(epoch window, span tree, counters)",
    )
    incidents.add_argument(
        "path", help="an incident bundle JSON, or the incidents/ directory"
    )
    incidents.add_argument(
        "--top", type=int, default=10, help="counters to show (default: 10)"
    )
    incidents.add_argument(
        "--depth", type=int, default=None, help="maximum span-tree depth (default: unlimited)"
    )
    incidents.set_defaults(func=cmd_obs_incidents)

    export = obs_sub.add_parser(
        "export",
        help="render a metrics snapshot as a Prometheus/OpenMetrics textfile",
    )
    export.add_argument("source", help="--metrics snapshot JSON or --trace JSONL")
    export.add_argument(
        "--format",
        choices=("openmetrics",),
        default="openmetrics",
        help="output format (default: openmetrics)",
    )
    export.add_argument(
        "--out", metavar="PATH", help="write here instead of stdout"
    )
    export.set_defaults(func=cmd_obs_export)

    baseline = obs_sub.add_parser(
        "baseline", help="record perf + schedule-quality baselines (BENCH_obs.json)"
    )
    baseline_sub = baseline.add_subparsers(dest="baseline_command", required=True)
    record = baseline_sub.add_parser(
        "record", help="measure the live pipeline and write the baseline file"
    )
    record.add_argument(
        "--out", default="BENCH_obs.json", help="baseline path (default: BENCH_obs.json)"
    )
    record.add_argument("--radices", default="32,64,128", help="comma-separated radices")
    record.add_argument(
        "--schedulers", default="solstice,eclipse", help="comma-separated schedulers"
    )
    record.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    record.add_argument("--trials", type=int, default=2, help="trials per point (default: 2)")
    record.add_argument("--repeats", type=int, default=2, help="timing repeats (default: 2)")
    record.add_argument("--seed", type=int, default=2016)
    record.add_argument(
        "--quick",
        action="store_true",
        help="smallest radix only, 1 trial, 1 repeat (CI in-job baseline)",
    )
    record.set_defaults(func=cmd_obs_baseline_record)

    check = obs_sub.add_parser(
        "check",
        help="re-measure and gate against a baseline: nonzero exit on timing "
        "regression or any schedule-quality drift",
    )
    check.add_argument(
        "--baseline", required=True, metavar="PATH", help="BENCH_obs.json to gate against"
    )
    check.add_argument(
        "--current",
        metavar="PATH",
        help="compare this pre-recorded measurement instead of measuring now",
    )
    check.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative timing-regression tolerance (default: 0.25)",
    )
    check.add_argument(
        "--min-seconds",
        type=float,
        default=0.01,
        help="ignore stages cheaper than this in the baseline (default: 0.01)",
    )
    check.set_defaults(func=cmd_obs_check)
    return parser


def _resolve_obs_path(value, args, suffix: str) -> "str | None":
    """Resolve a ``--trace``/``--metrics`` value, defaulting into the run dir.

    The bare flag (``--trace`` with no path) parses as ``"auto"`` and lands
    next to the sweep's journal — ``<command>-<suffix>`` under ``--run-dir``
    / ``$REPRO_RUN_DIR`` — so one directory holds everything ``obs watch``
    and ``obs diff`` need.
    """
    if not value:
        return None
    if value != "auto":
        return value
    run_dir = (
        Path(args.run_dir) if getattr(args, "run_dir", None) else default_run_dir()
    )
    return str(run_dir / f"{args.command}-{suffix}")


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = _resolve_obs_path(getattr(args, "trace", None), args, "trace.jsonl")
    metrics_path = _resolve_obs_path(
        getattr(args, "metrics", None), args, "metrics.json"
    )
    if not trace_path and not metrics_path:
        return args.func(args)

    # Either flag turns both backends on for the whole command: the trace
    # embeds the metrics snapshot (one file feeds `obs summarize`) and the
    # outputs are written even when the command fails partway.
    tracer = obs.JsonlTracer()
    registry = obs.MetricsRegistry()
    with obs.observability(tracer=tracer, metrics=registry):
        root = tracer.begin(f"repro.{args.command}")
        try:
            return args.func(args)
        finally:
            tracer.end(root)
            snapshot = registry.snapshot()
            if trace_path:
                tracer.dump(
                    trace_path,
                    meta={
                        "command": args.command,
                        "argv": list(argv) if argv is not None else sys.argv[1:],
                    },
                    metrics_snapshot=snapshot,
                )
                print(f"trace written to {trace_path}", file=sys.stderr)
            if metrics_path:
                atomic_write_json(snapshot, metrics_path)
                print(f"metrics written to {metrics_path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
