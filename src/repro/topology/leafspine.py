"""Leaf-spine hybrid fabric with optional composite spine links (§4).

Topology (paper §4(a), after Helios/c-Through-style fabrics):

* ``n_leaves`` ToR (leaf) switches, each with
  ``n_eps_spines`` uplinks of rate ``eps_link_rate`` to electronic packet
  spines and ``n_ocs_spines`` uplinks of rate ``ocs_link_rate`` to optical
  circuit spines;
* optionally ``n_composite_links`` high-bandwidth links between OCS spines
  and EPS spines — the fabric-level analogue of the cp-Switch's composite
  paths ("a leaf-spine hybrid solution can be extended by connecting among
  the OCS and the EPS spines").

The class builds the fabric as a :mod:`networkx` multigraph, answers
structural questions (path capacities, bisection bandwidth,
oversubscription), and — the part the schedulers consume — reduces the
fabric to the equivalent single-switch :class:`~repro.switch.params
.SwitchParams`:

* the per-leaf EPS capacity is the sum of its EPS uplinks,
* the per-leaf OCS capacity is one OCS uplink (a leaf holds one circuit at
  a time in the base model),
* composite capability requires at least one OCS-spine↔EPS-spine link.

This validates the paper's scaling claim concretely: any demand matrix
over the leaves can be scheduled with the unmodified single-switch
algorithms against the reduced parameters, and the simulator's results
carry over to the fabric as long as the fabric is non-blocking for the
modeled classes (checked by :meth:`LeafSpineFabric.validate_nonblocking`).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.switch.params import SwitchParams
from repro.utils.validation import check_positive

#: Node-kind attribute values.
LEAF = "leaf"
EPS_SPINE = "eps-spine"
OCS_SPINE = "ocs-spine"

#: Edge-kind attribute values.
EPS_UPLINK = "eps-uplink"
OCS_UPLINK = "ocs-uplink"
COMPOSITE_LINK = "composite-link"


@dataclass(frozen=True)
class LeafSpineParams:
    """Dimensions and rates of a leaf-spine hybrid fabric.

    Attributes
    ----------
    n_leaves:
        ToR switches (the scheduling "ports").
    n_eps_spines, n_ocs_spines:
        Electronic / optical spine switches.
    eps_link_rate, ocs_link_rate:
        Leaf-uplink rates (Mb/ms).
    n_composite_links:
        OCS-spine↔EPS-spine links (0 = plain hybrid fabric).
    composite_link_rate:
        Rate of each composite link; ``None`` = ``ocs_link_rate``.
    reconfig_delay:
        OCS spine reconfiguration penalty δ (ms).
    """

    n_leaves: int
    n_eps_spines: int = 2
    n_ocs_spines: int = 1
    eps_link_rate: float = 5.0
    ocs_link_rate: float = 100.0
    n_composite_links: int = 0
    composite_link_rate: "float | None" = None
    reconfig_delay: float = 0.02

    def __post_init__(self) -> None:
        for name in ("n_leaves", "n_eps_spines", "n_ocs_spines"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.n_leaves < 2:
            raise ValueError("a fabric needs at least 2 leaves")
        check_positive("eps_link_rate", self.eps_link_rate)
        check_positive("ocs_link_rate", self.ocs_link_rate)
        if self.n_composite_links < 0:
            raise ValueError("n_composite_links must be >= 0")
        if self.composite_link_rate is not None:
            check_positive("composite_link_rate", self.composite_link_rate)

    @property
    def effective_composite_rate(self) -> float:
        return (
            self.ocs_link_rate
            if self.composite_link_rate is None
            else self.composite_link_rate
        )


class LeafSpineFabric:
    """A concrete leaf-spine hybrid fabric graph."""

    def __init__(self, params: LeafSpineParams) -> None:
        self.params = params
        self.graph = self._build(params)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build(params: LeafSpineParams) -> nx.MultiGraph:
        graph = nx.MultiGraph()
        leaves = [f"leaf{i}" for i in range(params.n_leaves)]
        eps_spines = [f"eps{i}" for i in range(params.n_eps_spines)]
        ocs_spines = [f"ocs{i}" for i in range(params.n_ocs_spines)]
        graph.add_nodes_from(leaves, kind=LEAF)
        graph.add_nodes_from(eps_spines, kind=EPS_SPINE)
        graph.add_nodes_from(ocs_spines, kind=OCS_SPINE)
        for leaf in leaves:
            for spine in eps_spines:
                graph.add_edge(leaf, spine, kind=EPS_UPLINK, rate=params.eps_link_rate)
            for spine in ocs_spines:
                graph.add_edge(leaf, spine, kind=OCS_UPLINK, rate=params.ocs_link_rate)
        for index in range(params.n_composite_links):
            ocs = ocs_spines[index % len(ocs_spines)]
            eps = eps_spines[index % len(eps_spines)]
            graph.add_edge(
                ocs, eps, kind=COMPOSITE_LINK, rate=params.effective_composite_rate
            )
        return graph

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #

    def leaves(self) -> "list[str]":
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == LEAF]

    def spines(self, kind: str) -> "list[str]":
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == kind]

    def edges_of_kind(self, kind: str) -> "list[tuple[str, str, dict]]":
        return [
            (u, v, data)
            for u, v, data in self.graph.edges(data=True)
            if data["kind"] == kind
        ]

    @property
    def has_composite_links(self) -> bool:
        """Whether the fabric supports composite paths at all."""
        return bool(self.edges_of_kind(COMPOSITE_LINK))

    def leaf_eps_capacity(self, leaf: "str | int") -> float:
        """Aggregate EPS uplink capacity of one leaf (Mb/ms)."""
        leaf = self._leaf_name(leaf)
        return float(
            sum(
                data["rate"]
                for _u, _v, data in self.graph.edges(leaf, data=True)
                if data["kind"] == EPS_UPLINK
            )
        )

    def leaf_ocs_capacity(self, leaf: "str | int") -> float:
        """OCS uplink capacity of one leaf — one active circuit (Mb/ms)."""
        leaf = self._leaf_name(leaf)
        rates = [
            data["rate"]
            for _u, _v, data in self.graph.edges(leaf, data=True)
            if data["kind"] == OCS_UPLINK
        ]
        return float(max(rates)) if rates else 0.0

    def eps_bisection_bandwidth(self) -> float:
        """EPS-plane bisection bandwidth of the fabric (Mb/ms).

        With uniform uplinks, splitting the leaves in half limits EPS
        traffic to ``(n_leaves / 2) * Σ per-leaf EPS uplink rate``.
        """
        per_leaf = self.leaf_eps_capacity(0)
        return (self.params.n_leaves / 2.0) * per_leaf

    def oversubscription(self, leaf_downlink_capacity: float) -> float:
        """Downlink-to-uplink oversubscription ratio of one leaf."""
        check_positive("leaf_downlink_capacity", leaf_downlink_capacity)
        uplink = self.leaf_eps_capacity(0) + self.leaf_ocs_capacity(0)
        return leaf_downlink_capacity / uplink

    def composite_path_hops(self) -> "list[list[str]]":
        """The OCS→EPS composite routes, as node paths.

        Each composite link yields the one-to-many style route
        ``leaf* → ocs spine → eps spine → leaf*`` (endpoints elided).
        """
        routes = []
        for ocs, eps, _data in self.edges_of_kind(COMPOSITE_LINK):
            # Normalize direction: OCS spine first.
            if self.graph.nodes[ocs]["kind"] != OCS_SPINE:
                ocs, eps = eps, ocs
            routes.append([ocs, eps])
        return routes

    def validate_nonblocking(self) -> None:
        """Check the reductions' modeling assumptions hold for this fabric.

        The single-switch reduction assumes (i) every leaf pair is
        connected in the EPS plane, (ii) every leaf reaches some OCS
        spine, and (iii) composite links (if any) connect the two planes.
        """
        leaves = self.leaves()
        eps_plane = self.graph.edge_subgraph(
            [
                (u, v, k)
                for u, v, k, d in self.graph.edges(keys=True, data=True)
                if d["kind"] == EPS_UPLINK
            ]
        )
        for leaf in leaves:
            if leaf not in eps_plane or not any(
                other in eps_plane and nx.has_path(eps_plane, leaf, other)
                for other in leaves
                if other != leaf
            ):
                raise ValueError(f"{leaf} is disconnected in the EPS plane")
        for leaf in leaves:
            if not any(
                data["kind"] == OCS_UPLINK
                for _u, _v, data in self.graph.edges(leaf, data=True)
            ):
                raise ValueError(f"{leaf} has no OCS uplink")

    # ------------------------------------------------------------------ #
    # reduction to the single-switch abstraction
    # ------------------------------------------------------------------ #

    def equivalent_switch_params(self) -> SwitchParams:
        """The single-switch :class:`SwitchParams` this fabric emulates.

        ``Ce`` is the leaf's aggregate EPS uplink rate; ``Co`` its OCS
        uplink rate; δ the OCS spine's reconfiguration penalty.  The
        composite budget ``Ce*`` stays at the default (no reservation),
        mirroring the paper's evaluation.
        """
        self.validate_nonblocking()
        return SwitchParams(
            n_ports=self.params.n_leaves,
            eps_rate=self.leaf_eps_capacity(0),
            ocs_rate=self.leaf_ocs_capacity(0),
            reconfig_delay=self.params.reconfig_delay,
        )

    def supports_cp_scheduling(self) -> bool:
        """Whether cp-Switch schedules are executable on this fabric."""
        return self.has_composite_links

    def _leaf_name(self, leaf: "str | int") -> str:
        if isinstance(leaf, int):
            return f"leaf{leaf}"
        return leaf

    def __repr__(self) -> str:
        p = self.params
        return (
            f"LeafSpineFabric(leaves={p.n_leaves}, eps_spines={p.n_eps_spines}, "
            f"ocs_spines={p.n_ocs_spines}, composite_links={p.n_composite_links})"
        )
