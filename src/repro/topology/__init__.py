"""Multi-layer hybrid fabrics (§4, "Augmenting Hybrid Architectures" /
"Scaling").

The single-switch model "could be generalized to multi-layer networks of
switches" (§1); §4 sketches how: connect the OCS spines and the EPS spines
of a leaf-spine hybrid fabric with composite links.  This package models
that fabric explicitly and reduces it back to the single-switch
abstraction the schedulers operate on.
"""

from repro.topology.leafspine import LeafSpineFabric, LeafSpineParams

__all__ = ["LeafSpineFabric", "LeafSpineParams"]
