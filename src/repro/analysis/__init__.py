"""Experiment harness: seeded trials, aggregation, reporting.

Reproduces the paper's evaluation procedure (§3): generate random demand
matrices from a model, schedule each for both h-Switch and cp-Switch with
the same sub-scheduler, execute both online in the fluid simulator, and
average the metrics across trials.
"""

from repro.analysis.aggregate import Aggregate, aggregate
from repro.analysis.controller import EpochController, EpochReport
from repro.analysis.experiment import (
    ComparisonAggregate,
    ExperimentConfig,
    TrialMetrics,
    run_comparison,
)
from repro.analysis.report import format_improvement, format_table

__all__ = [
    "Aggregate",
    "ComparisonAggregate",
    "EpochController",
    "EpochReport",
    "ExperimentConfig",
    "TrialMetrics",
    "aggregate",
    "format_improvement",
    "format_table",
    "run_comparison",
]
