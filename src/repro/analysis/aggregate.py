"""Aggregation of per-trial metrics across random demand matrices.

The paper generates 100 random demand matrices per point and reports the
average (§3).  We additionally keep the spread, which EXPERIMENTS.md uses
to justify the smaller default trial counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one metric over trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def __format__(self, spec: str) -> str:
        spec = spec or ".3g"
        return f"{self.mean:{spec}}"

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.stderr:.2g} (n={self.count})"


def aggregate(values: "list[float] | np.ndarray") -> Aggregate:
    """Build an :class:`Aggregate` from raw per-trial values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return Aggregate(mean=float("nan"), std=0.0, minimum=float("nan"), maximum=float("nan"), count=0)
    return Aggregate(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def ratio_of_means(numerator: Aggregate, denominator: Aggregate) -> float:
    """Ratio of two aggregates' means (nan-safe)."""
    if denominator.mean == 0 or math.isnan(denominator.mean):
        return float("nan")
    return numerator.mean / denominator.mean
