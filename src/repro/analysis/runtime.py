"""Scheduler run-time comparison — Tables 1 and 2 of the paper (§4).

The paper reports, per radix and per workload (typical §3.3 / intensive
§3.4), the wall time of the h-Switch scheduling algorithm vs the full
cp-Switch pipeline (reduction + h-Switch sub-routine + interpretation), as
a ``(slow, fast)`` OCS pair, and emphasizes the **ratio** — absolute times
are implementation- and machine-dependent (both the paper's and ours are
"high-level Python implementations").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.aggregate import Aggregate
from repro.analysis.experiment import ComparisonAggregate


@dataclass(frozen=True)
class RuntimeCell:
    """One paper-table cell: (slow OCS, fast OCS) millisecond pair."""

    slow_ms: float
    fast_ms: float

    def __str__(self) -> str:
        return f"{self.slow_ms:.1f}, {self.fast_ms:.1f}"


@dataclass(frozen=True)
class RuntimeRow:
    """One radix row of a runtime table."""

    n_ports: int
    h_switch: RuntimeCell
    cp_switch: RuntimeCell

    @property
    def ratio(self) -> RuntimeCell:
        """h-Switch time divided by cp-Switch time, per OCS class."""
        return RuntimeCell(
            slow_ms=_safe_ratio(self.h_switch.slow_ms, self.cp_switch.slow_ms),
            fast_ms=_safe_ratio(self.h_switch.fast_ms, self.cp_switch.fast_ms),
        )


def _safe_ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator > 0 else float("nan")


def _ms(agg: Aggregate) -> float:
    """Seconds aggregate → milliseconds mean."""
    return agg.mean * 1e3


def runtime_row(
    n_ports: int,
    slow_result: ComparisonAggregate,
    fast_result: ComparisonAggregate,
) -> RuntimeRow:
    """Assemble one table row from the slow- and fast-OCS experiment runs."""
    if slow_result.n_ports != n_ports or fast_result.n_ports != n_ports:
        raise ValueError("result radix does not match the requested row radix")
    return RuntimeRow(
        n_ports=n_ports,
        h_switch=RuntimeCell(
            slow_ms=_ms(slow_result.h_sched_seconds),
            fast_ms=_ms(fast_result.h_sched_seconds),
        ),
        cp_switch=RuntimeCell(
            slow_ms=_ms(slow_result.cp_sched_seconds),
            fast_ms=_ms(fast_result.cp_sched_seconds),
        ),
    )
