"""Perf-tracking harness for the scheduling/simulation hot paths.

The vectorization work (flat-support fluid engine, batched QuickStuff,
direct-CSR matching, list-based greedy reduction) is only trustworthy if
two things hold *simultaneously*:

1. the optimized pipeline is **measurably faster** than the seed pipeline,
   and
2. it produces **bit-identical simulations** — same per-entry finish
   times, same completion times, conservation intact.

This module checks both on every run.  The "before" side composes the
frozen seed kernels from :mod:`repro.sim.reference`; the "after" side is
the live library.  Both schedule and simulate the *same* seeded demand
matrices (the Figure 5/6 benchmark workload: :class:`SkewedWorkload`,
root seed 2016), and every trial's before/after simulation results are
compared entry-for-entry before any timing is reported.

``benchmarks/bench_perf.py`` is the CLI wrapper; it writes the machine-
readable report to ``BENCH_engine.json`` at the repo root so future PRs
can diff wall-clock numbers against a recorded baseline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis.figures import DEFAULT_SEED, params_for
from repro.core.config import FilterConfig
from repro.core.cpsched import cpsched
from repro.core.divide import divide_by_type
from repro.core.scheduler import (
    CompositeScheduleEntry,
    CpSchedule,
    CpSwitchScheduler,
)
from repro.hybrid.base import make_scheduler
from repro.hybrid.schedule import Schedule
from repro.matching import kernels
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.engine import CompositeService
from repro.sim.metrics import SimulationResult
from repro.sim.reference import (
    ReferenceFluidEngine,
    reference_cp_switch_demand_reduction,
    reference_solstice_schedule,
)
from repro.switch.params import SwitchParams
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_demand_matrix
from repro.workloads.skewed import SkewedWorkload

#: The stages every point is timed over, in pipeline order.
STAGES: "tuple[str, ...]" = ("h_schedule", "h_simulate", "cp_schedule", "cp_simulate")

#: Scheduler name → the paper figure its pairing reproduces.
FIGURE_FOR: "dict[str, str]" = {"solstice": "fig5", "eclipse": "fig6"}


# ---------------------------------------------------------------------- #
# reference ("before") pipeline composition
# ---------------------------------------------------------------------- #


def _reference_inner(scheduler: str):
    """The seed h-Switch sub-scheduler for ``scheduler``.

    Solstice is rebuilt from the seed stuffing/matching kernels; Eclipse's
    code was not touched by the vectorization work, so the live scheduler
    *is* the reference one.
    """
    if scheduler == "solstice":
        return reference_solstice_schedule
    return make_scheduler(scheduler).schedule


def reference_hybrid_schedule(
    demand: np.ndarray, params: SwitchParams, scheduler: str = "solstice"
) -> Schedule:
    """h-Switch schedule via the seed kernels."""
    return _reference_inner(scheduler)(demand, params)


def reference_cp_schedule(
    demand: np.ndarray,
    params: SwitchParams,
    scheduler: str = "solstice",
    filter_config: "FilterConfig | None" = None,
) -> CpSchedule:
    """Algorithm 4 composed from the seed kernels.

    Mirrors :meth:`repro.core.scheduler.CpSwitchScheduler.schedule` with
    the seed reduction and (for Solstice) the seed sub-scheduler; the
    DivideByType/CPSched interpretation loop was never rewritten, so it is
    shared with the live scheduler.
    """
    config = filter_config or FilterConfig()
    demand = check_demand_matrix(demand)
    reduction = reference_cp_switch_demand_reduction(
        demand,
        fanout_threshold=config.resolve_fanout_threshold(params),
        volume_threshold=config.resolve_volume_threshold(params),
    )
    reduced_schedule = _reference_inner(scheduler)(reduction.reduced, params)

    eps_budget = params.effective_eps_budget
    filtered = reduction.filtered.copy()
    entries: "list[CompositeScheduleEntry]" = []
    for item in reduced_schedule:
        previous = filtered.copy()
        divided = divide_by_type(item.permutation)
        if divided.o2m_port is not None:
            r = divided.o2m_port
            filtered[r, :] = cpsched(
                filtered[r, :], item.duration, params.ocs_rate, eps_budget
            )
        if divided.m2o_port is not None:
            c = divided.m2o_port
            filtered[:, c] = cpsched(
                filtered[:, c], item.duration, params.ocs_rate, eps_budget
            )
        entries.append(
            CompositeScheduleEntry(
                regular=divided.regular,
                duration=item.duration,
                composite_served=previous - filtered,
                o2m_port=divided.o2m_port,
                m2o_port=divided.m2o_port,
            )
        )
    return CpSchedule(
        entries=tuple(entries),
        reconfig_delay=params.reconfig_delay,
        reduction=reduction,
        filtered_residual=filtered,
        reduced_schedule=reduced_schedule,
    )


def reference_simulate_hybrid(
    demand: np.ndarray, schedule: Schedule, params: SwitchParams
) -> SimulationResult:
    """Run-to-completion h-Switch execution on the seed engine."""
    engine = ReferenceFluidEngine(np.asarray(demand, dtype=np.float64), params)
    for entry in schedule:
        engine.run_phase(params.reconfig_delay)
        engine.run_phase(entry.duration, circuits=entry.permutation)
    engine.run_phase(None)
    return engine.result(n_configs=schedule.n_configs, makespan=schedule.makespan)


def reference_simulate_cp(
    demand: np.ndarray, cp_schedule: CpSchedule, params: SwitchParams
) -> SimulationResult:
    """Run-to-completion cp-Switch execution on the seed engine."""
    engine = ReferenceFluidEngine(np.asarray(demand, dtype=np.float64), params)
    engine.assign_composite(cp_schedule.reduction.filtered)
    for entry in cp_schedule.entries:
        engine.run_phase(params.reconfig_delay)
        composites: "list[CompositeService]" = []
        if entry.o2m_port is not None:
            composites.append(CompositeService(kind="o2m", port=entry.o2m_port))
        if entry.m2o_port is not None:
            composites.append(CompositeService(kind="m2o", port=entry.m2o_port))
        engine.run_phase(entry.duration, circuits=entry.regular, composites=composites)
    engine.merge_composite_into_regular()
    engine.run_phase(None)
    return engine.result(
        n_configs=cp_schedule.n_configs, makespan=cp_schedule.makespan
    )


# ---------------------------------------------------------------------- #
# equivalence
# ---------------------------------------------------------------------- #


def assert_results_equivalent(
    before: SimulationResult, after: SimulationResult, context: str = ""
) -> None:
    """Raise :class:`AssertionError` unless two simulations agree.

    Finish times and completion time must be bit-identical; served-volume
    breakdowns may differ by summation order (pairwise vs flat), so they
    get a relative ulp-scale tolerance.  Conservation was already checked
    inside each ``result()`` call.
    """
    where = f" [{context}]" if context else ""
    if not np.array_equal(before.finish_times, after.finish_times, equal_nan=True):
        raise AssertionError(f"finish_times differ{where}")
    same_completion = before.completion_time == after.completion_time or (
        np.isnan(before.completion_time) and np.isnan(after.completion_time)
    )
    if not same_completion:
        raise AssertionError(
            f"completion_time {before.completion_time!r} != "
            f"{after.completion_time!r}{where}"
        )
    if before.n_configs != after.n_configs:
        raise AssertionError(f"n_configs differ{where}")
    if before.makespan != after.makespan:
        raise AssertionError(f"makespan differs{where}")
    for attr in ("served_ocs_direct", "served_composite", "served_eps"):
        b, a = getattr(before, attr), getattr(after, attr)
        if abs(b - a) > 1e-9 * max(1.0, abs(b)):
            raise AssertionError(f"{attr} {b!r} != {a!r}{where}")


# ---------------------------------------------------------------------- #
# timing
# ---------------------------------------------------------------------- #


def _run_pipeline(demands, params: SwitchParams, scheduler: str, *, reference: bool):
    """Schedule + simulate every demand once; return (stage seconds, results).

    Results are ``(h_result, cp_result)`` pairs in trial order.
    """
    times = dict.fromkeys(STAGES, 0.0)
    results = []
    if not reference:
        inner = make_scheduler(scheduler)
        cp_scheduler = CpSwitchScheduler(inner)
    for demand in demands:
        start = time.perf_counter()
        if reference:
            h_sched = reference_hybrid_schedule(demand, params, scheduler)
        else:
            h_sched = inner.schedule(demand, params)
        t1 = time.perf_counter()
        if reference:
            h_result = reference_simulate_hybrid(demand, h_sched, params)
        else:
            h_result = simulate_hybrid(demand, h_sched, params)
        t2 = time.perf_counter()
        if reference:
            cp_sched = reference_cp_schedule(demand, params, scheduler)
        else:
            cp_sched = cp_scheduler.schedule(demand, params)
        t3 = time.perf_counter()
        if reference:
            cp_result = reference_simulate_cp(demand, cp_sched, params)
        else:
            cp_result = simulate_cp(demand, cp_sched, params)
        t4 = time.perf_counter()
        times["h_schedule"] += t1 - start
        times["h_simulate"] += t2 - t1
        times["cp_schedule"] += t3 - t2
        times["cp_simulate"] += t4 - t3
        results.append((h_result, cp_result))
    return times, results


def bench_point(
    n_ports: int,
    scheduler: str = "solstice",
    ocs: str = "fast",
    n_trials: int = 2,
    seed: int = DEFAULT_SEED,
    repeats: int = 2,
) -> dict:
    """Time the before/after pipelines on one (radix, scheduler) point.

    Every repeat re-runs the full pipeline on the same seeded demands;
    per-stage times are the minimum across repeats (standard micro-bench
    practice — the minimum is the least noisy estimator of the true cost).
    Before/after simulation results are asserted equivalent on every trial
    of every repeat.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    params = params_for(ocs, n_ports)
    workload = SkewedWorkload.for_params(params)
    demands = [
        workload.generate(params.n_ports, rng).demand
        for rng in spawn_rngs(seed, n_trials)
    ]

    before = dict.fromkeys(STAGES, np.inf)
    after = dict.fromkeys(STAGES, np.inf)
    for _ in range(repeats):
        ref_times, ref_results = _run_pipeline(
            demands, params, scheduler, reference=True
        )
        opt_times, opt_results = _run_pipeline(
            demands, params, scheduler, reference=False
        )
        for stage in STAGES:
            before[stage] = min(before[stage], ref_times[stage])
            after[stage] = min(after[stage], opt_times[stage])
        for trial, ((ref_h, ref_cp), (opt_h, opt_cp)) in enumerate(
            zip(ref_results, opt_results)
        ):
            ctx = f"{scheduler} radix={n_ports} trial={trial}"
            assert_results_equivalent(ref_h, opt_h, f"h-switch {ctx}")
            assert_results_equivalent(ref_cp, opt_cp, f"cp-switch {ctx}")

    before["total"] = sum(before[s] for s in STAGES)
    after["total"] = sum(after[s] for s in STAGES)
    return {
        "radix": n_ports,
        "scheduler": scheduler,
        "figure": FIGURE_FOR.get(scheduler, scheduler),
        "ocs": ocs,
        "n_trials": n_trials,
        "repeats": repeats,
        "before_s": {k: round(v, 6) for k, v in before.items()},
        "after_s": {k: round(v, 6) for k, v in after.items()},
        "speedup": round(before["total"] / after["total"], 3)
        if after["total"] > 0
        else float("inf"),
        "bit_identical": True,  # assert_results_equivalent raised otherwise
    }


def run_suite(
    radices: "tuple[int, ...]" = (32, 64, 128),
    schedulers: "tuple[str, ...]" = ("solstice", "eclipse"),
    ocs: str = "fast",
    n_trials: int = 2,
    seed: int = DEFAULT_SEED,
    repeats: int = 2,
    extended_radices: "tuple[int, ...]" = (),
) -> dict:
    """Run every (radix, scheduler) point and assemble the JSON payload.

    ``extended_radices`` adds Solstice-only points beyond the shared radix
    sweep (the kernel-scaling points, 256/512 by convention): Eclipse's
    O(n³)-per-probe LSAP makes its reference pipeline impractically slow
    there, while Solstice's sparse kernels are exactly what those radices
    are meant to exercise.
    """
    points = [
        bench_point(
            n_ports=n,
            scheduler=scheduler,
            ocs=ocs,
            n_trials=n_trials,
            seed=seed,
            repeats=repeats,
        )
        for scheduler in schedulers
        for n in radices
    ]
    points += [
        bench_point(
            n_ports=n,
            scheduler="solstice",
            ocs=ocs,
            n_trials=n_trials,
            seed=seed,
            repeats=repeats,
        )
        for n in extended_radices
        if "solstice" in schedulers
    ]
    top_radix = max(radices)
    headline = {
        p["scheduler"]: p["speedup"] for p in points if p["radix"] == top_radix
    }
    return {
        "benchmark": "engine-hot-path",
        "seed": seed,
        "ocs": ocs,
        "trials_per_point": n_trials,
        "repeats": repeats,
        "backend": kernels.backend(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "points": points,
        "headline_radix": top_radix,
        "headline_speedup": headline,
    }


def write_report(payload: dict, path: "str | Path") -> Path:
    """Persist ``payload`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
