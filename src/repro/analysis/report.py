"""Plain-text rendering of experiment results.

The benchmark harness prints each figure/table as an aligned text table
whose rows mirror the paper's series, so a run's output can be compared
against the paper side by side (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table.

    Numbers are formatted with 4 significant digits; everything else via
    ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but table has {len(headers)} columns")
        for k, value in enumerate(row):
            widths[k] = max(widths[k], len(value))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(value.rjust(widths[k]) for k, value in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_improvement(h_value: float, cp_value: float) -> str:
    """'cp is X% better/worse' style annotation for completion times."""
    if h_value <= 0:
        return "n/a"
    change = 1.0 - cp_value / h_value
    direction = "lower" if change >= 0 else "higher"
    return f"cp {abs(change) * 100:.0f}% {direction}"


def format_ratio(numerator: float, denominator: float) -> str:
    """'X.XXx' ratio annotation for utilization and runtime comparisons."""
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"
