"""Closed-loop epoch controller — VOQ-driven online operation (§2.1).

The paper's switch model builds each scheduling round's demand matrix from
the VOQ occupancies ("The occupancy of these VOQs can be used to build the
demand matrix").  This module closes that loop for multi-epoch operation:

1. arrivals enqueue into the :class:`~repro.switch.voq.VirtualOutputQueues`;
2. at each epoch boundary the controller snapshots the occupancy, runs the
   configured scheduler (h-Switch or cp-Switch), and executes the schedule
   in the fluid simulator — to completion, or bounded by the epoch length;
3. the next epoch's arrivals accumulate (leftovers stay queued) and the
   loop repeats.

This is how a deployment would actually drive the scheduling algorithms,
and it surfaces behaviour single-shot experiments cannot: backlog
evolution under sustained load, and whether the switch *keeps up* — a
bounded epoch whose arrivals exceed its service capacity grows backlog
epoch over epoch.

With a :class:`~repro.faults.plan.FaultPlan` the loop also closes over
hardware faults: each epoch executes under a fresh realization of the plan
(stream = epoch index, so whole trajectories replay from one seed), and at
the epoch boundary the controller *detects* composite-path ports that died
during execution and excludes them from the next scheduling round — the
demand reduction's composite column/row is masked, so demand that would
have parked on dead hardware stays on the regular paths.  Stranded backlog
(volume a faulted or truncated epoch could not deliver) remains queued in
the VOQs and is retried in the next round automatically.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.scheduler import CpSwitchScheduler
from repro.faults.plan import FaultPlan
from repro.faults.reroute import BackupPlanner
from repro.hybrid.base import HybridScheduler
from repro.runner.journal import RunJournal
from repro.service.deadline import AnytimeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams
from repro.switch.voq import VirtualOutputQueues
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: An arrival process: epoch index -> demand-matrix increment (Mb).
ArrivalProcess = Callable[[int], np.ndarray]


@dataclass(frozen=True)
class EpochReport:
    """Outcome of one control epoch.

    ``stranded_volume`` is the demand this epoch scheduled but could not
    deliver (it stays queued and is retried next epoch);
    ``released_composite`` is the volume that fell back from dead composite
    paths to the regular paths during the epoch; ``dead_o2m``/``dead_m2o``
    are the composite ports known dead *after* the epoch — the next
    scheduling round excludes them.

    With fast-reroute enabled, ``backups_armed`` / ``backup_plan_ms``
    record the per-epoch backup precompute, and ``reroute_swaps`` /
    ``recovery_ms`` / ``reparked_mb`` the mid-epoch swaps executed
    (``recovery_ms`` is the worst detection-to-resumption latency).

    With a scheduling deadline (``deadline_s``), ``deadline_hit`` /
    ``fallback_level`` / ``schedule_ms`` / ``schedule_age_epochs`` record
    the anytime wrapper's decision (see
    :mod:`repro.service.deadline`), and ``shed_volume`` is the arrival
    volume backpressure refused since the previous report (it is part of
    the controller's conservation ledger, never silently dropped).
    """

    epoch: int
    offered_volume: float
    scheduled_volume: float
    served_volume: float
    completion_time: float
    n_configs: int
    makespan: float
    backlog_after: float
    stranded_volume: float = 0.0
    released_composite: float = 0.0
    dead_o2m: "tuple[int, ...]" = ()
    dead_m2o: "tuple[int, ...]" = ()
    backups_armed: int = 0
    backup_plan_ms: float = 0.0
    reroute_swaps: int = 0
    recovery_ms: float = 0.0
    reparked_mb: float = 0.0
    deadline_hit: bool = False
    fallback_level: int = 0
    schedule_ms: float = 0.0
    schedule_age_epochs: int = 0
    shed_volume: float = 0.0

    @property
    def kept_up(self) -> bool:
        """Whether the epoch drained everything that was queued.

        The residual-backlog cutoff scales with the offered volume — the
        same ``VOLUME_TOL * max(1, total)`` convention as
        :meth:`EpochController.check_conservation` — because float dust
        after serving a large epoch grows with the volumes involved: an
        absolute cutoff reports ``kept_up == False`` on a fully-drained
        1e9 Mb epoch purely from rounding.
        """
        return self.backlog_after <= VOLUME_TOL * max(1.0, self.offered_volume)


@dataclass
class EpochController:
    """Runs the schedule/execute loop over successive epochs.

    Parameters
    ----------
    params:
        Switch parameters.
    scheduler:
        The h-Switch scheduling algorithm.
    use_composite_paths:
        Schedule as a cp-Switch (Algorithm 4 wrapping ``scheduler``)
        instead of a plain h-Switch.
    epoch_duration:
        Wall-clock budget (ms) per epoch.  ``None`` lets every epoch run
        its schedule to completion (no backlog can survive an epoch);
        a finite budget truncates execution and carries leftovers over —
        the sustained-load regime.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into every
        epoch's execution (stream = epoch index).  Composite ports observed
        dead are excluded from all subsequent scheduling rounds.
    fast_reroute:
        Precompute a :class:`~repro.faults.reroute.BackupSet` for every
        epoch's cp-Switch schedule and arm the simulator's mid-epoch
        hot-swap: a composite-port outage recovers at the current phase
        boundary instead of degrading to an EPS-only drain for the rest of
        the epoch.  Requires ``use_composite_paths``; fault-free epochs are
        bit-identical with or without it.
    journal:
        Optional :class:`~repro.runner.journal.RunJournal` receiving one
        ``epoch`` record (the :class:`EpochReport` fields plus any
        scheduler watchdog diagnostics) per epoch, atomically — a killed
        multi-epoch run keeps every completed epoch's report on disk.
    deadline_s:
        Wall-clock budget (seconds) for *computing* each epoch's schedule.
        Arms the :class:`~repro.service.deadline.AnytimeScheduler` fallback
        ladder: on exhaustion the epoch still gets a valid schedule (a
        truncated prefix, a re-interpreted previous schedule, TDM, or an
        EPS-only drain — in that order of preference).  Requires
        ``use_composite_paths``.  ``None`` (the default) schedules
        unbounded and is bit-identical to not wrapping at all.
    deadline_clock:
        Clock read by the deadline budget; injectable (e.g. a
        :class:`~repro.service.deadline.TickClock`) for deterministic
        tests.  Defaults to :func:`time.perf_counter` — duration
        measurement must never read the steppable wall clock.
    max_backlog:
        Backpressure threshold (Mb).  When consecutive deadline misses
        reach ``backpressure_after_misses``, :meth:`offer` admits at most
        enough arrival volume to keep the VOQ backlog at this bound;
        the overflow is shed or parked per ``overflow_policy``.  ``None``
        disables backpressure (all arrivals are always admitted).
    overflow_policy:
        What to do with arrival volume refused by backpressure:
        ``"shed"`` drops it into the ``shed_volume`` ledger (reported per
        epoch and accounted by :meth:`check_conservation`); ``"park"``
        holds it outside the VOQs and re-offers it when pressure clears.
    backpressure_after_misses:
        Consecutive deadline misses required before backpressure engages
        (a single miss is noise; sustained misses mean demand is outrunning
        service).
    """

    params: SwitchParams
    scheduler: HybridScheduler
    use_composite_paths: bool = False
    epoch_duration: "float | None" = None
    fault_plan: "FaultPlan | None" = None
    journal: "RunJournal | None" = None
    fast_reroute: bool = False
    deadline_s: "float | None" = None
    deadline_clock: Callable = field(default=time.perf_counter, repr=False)
    max_backlog: "float | None" = None
    overflow_policy: str = "shed"
    backpressure_after_misses: int = 1
    _voqs: VirtualOutputQueues = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.epoch_duration is not None and self.epoch_duration <= 0:
            raise ValueError(f"epoch_duration must be positive, got {self.epoch_duration}")
        if self.fast_reroute and not self.use_composite_paths:
            raise ValueError(
                "fast_reroute repairs composite-path outages; it requires "
                "use_composite_paths=True"
            )
        if self.deadline_s is not None:
            value = float(self.deadline_s)
            if math.isnan(value) or value <= 0:
                raise ValueError(
                    f"deadline_s must be a positive number of seconds (or None "
                    f"for unbounded), got {self.deadline_s}"
                )
            if not self.use_composite_paths:
                raise ValueError(
                    "deadline_s arms the anytime cp-Switch fallback ladder; it "
                    "requires use_composite_paths=True"
                )
        if self.max_backlog is not None:
            bound = float(self.max_backlog)
            if math.isnan(bound) or bound <= 0:
                raise ValueError(
                    f"max_backlog must be a positive volume (Mb), got {self.max_backlog}"
                )
        if self.overflow_policy not in ("shed", "park"):
            raise ValueError(
                f"overflow_policy must be 'shed' or 'park', got {self.overflow_policy!r}"
            )
        if self.backpressure_after_misses < 1:
            raise ValueError(
                f"backpressure_after_misses must be >= 1, "
                f"got {self.backpressure_after_misses}"
            )
        self._voqs = VirtualOutputQueues(self.params.n_ports)
        self._cp_scheduler = (
            CpSwitchScheduler(self.scheduler) if self.use_composite_paths else None
        )
        self._anytime = (
            AnytimeScheduler(
                self._cp_scheduler,
                deadline_s=self.deadline_s,
                clock=self.deadline_clock,
            )
            if self.deadline_s is not None
            else None
        )
        self._planner = (
            BackupPlanner(self._cp_scheduler) if self.fast_reroute else None
        )
        self._dead_o2m: "set[int]" = set()
        self._dead_m2o: "set[int]" = set()
        # Conservation ledger for backpressure: everything ever offered is
        # either enqueued, shed, or parked — check_conservation() audits it.
        self._offered_total = 0.0
        self._admitted_total = 0.0
        self._shed_total = 0.0
        self._shed_epoch = 0.0
        self._parked = np.zeros((self.params.n_ports, self.params.n_ports))
        self._consecutive_misses = 0

    @property
    def voqs(self) -> VirtualOutputQueues:
        return self._voqs

    @property
    def dead_composite_ports(self) -> "tuple[tuple[int, ...], tuple[int, ...]]":
        """Composite ports detected dead so far, as (o2m, m2o) tuples."""
        return tuple(sorted(self._dead_o2m)), tuple(sorted(self._dead_m2o))

    # ------------------------------------------------------------------ #

    def offer(self, arrivals: np.ndarray) -> float:
        """Enqueue an arrival demand matrix; returns the *admitted* volume.

        Without backpressure (``max_backlog=None``, the default) every
        offered byte is admitted and the return value equals the offered
        volume.  With backpressure armed and engaged (consecutive deadline
        misses ≥ ``backpressure_after_misses``), the pending volume —
        arrivals plus anything previously parked — is scaled down
        proportionally so the VOQ backlog stays at ``max_backlog``; the
        overflow is shed (``shed_volume`` ledger) or parked for a later
        offer, per ``overflow_policy``.  Shed and parked volume both stay
        on the books: :meth:`check_conservation` fails if any byte goes
        missing.
        """
        arrivals = check_demand_matrix(arrivals)
        if arrivals.shape[0] != self.params.n_ports:
            raise ValueError(
                f"arrivals are {arrivals.shape[0]}x{arrivals.shape[1]} but the "
                f"switch has {self.params.n_ports} ports"
            )
        offered = float(arrivals.sum())
        self._offered_total += offered

        # Previously parked overflow re-enters the admission decision
        # alongside fresh arrivals (oldest demand is not starved: parking
        # is matrix-shaped, so re-offers merge rather than queue behind).
        pending = arrivals + self._parked
        self._parked = np.zeros_like(self._parked)

        engaged = (
            self.max_backlog is not None
            and self._consecutive_misses >= self.backpressure_after_misses
        )
        total = float(pending.sum())
        if engaged and total > VOLUME_TOL:
            headroom = max(0.0, float(self.max_backlog) - self._voqs.backlog)
            if headroom < total:
                scale = headroom / total
                admitted_matrix = pending * scale
                overflow = pending - admitted_matrix
                if self.overflow_policy == "shed":
                    shed = float(overflow.sum())
                    self._shed_total += shed
                    self._shed_epoch += shed
                else:
                    self._parked = overflow
                pending = admitted_matrix
        admitted = float(pending.sum())
        self._admitted_total += admitted
        rows, cols = np.nonzero(pending)
        for i, j in zip(rows.tolist(), cols.tolist()):
            self._voqs.enqueue(i, j, float(pending[i, j]))
        return admitted

    @property
    def parked_volume(self) -> float:
        """Arrival volume held back by ``overflow_policy='park'`` (Mb)."""
        return float(self._parked.sum())

    @property
    def shed_volume_total(self) -> float:
        """Cumulative arrival volume shed by backpressure (Mb)."""
        return self._shed_total

    def check_conservation(self) -> None:
        """Audit the VOQs *and* the admission ledger.

        Every byte ever offered must be enqueued, shed, or parked —
        backpressure moves volume between those buckets but never loses it.
        """
        self._voqs.check_conservation()
        accounted = self._admitted_total + self._shed_total + float(self._parked.sum())
        tolerance = VOLUME_TOL * max(1.0, self._offered_total)
        if abs(self._offered_total - accounted) > tolerance:
            raise AssertionError(
                f"admission ledger broken: offered {self._offered_total:.6f} Mb "
                f"but admitted {self._admitted_total:.6f} + shed "
                f"{self._shed_total:.6f} + parked {float(self._parked.sum()):.6f} "
                f"= {accounted:.6f} Mb"
            )

    def run_epoch(self, epoch: int = 0) -> "tuple[EpochReport, SimulationResult]":
        """Snapshot the VOQs, schedule, execute (bounded by the epoch).

        Under a fault plan, execution runs against a fresh fault
        realization; afterwards the controller harvests newly dead
        composite ports (they are masked out of the next round's demand
        reduction) while stranded backlog stays queued for retry.
        """
        demand = self._voqs.occupancy.copy()
        offered = float(demand.sum())
        with obs.profiled("controller.epoch", epoch=epoch) as epoch_span:
            result = self._execute(demand, epoch)
            epoch_span.set(offered_mb=offered, configs=result.n_configs)
        residual = result.residual if result.residual is not None else np.zeros_like(demand)
        served = np.maximum(demand - residual, 0.0)
        self._voqs.serve_matrix(served)
        self._voqs.check_conservation()
        if result.fault_summary is not None:
            # Fault detection at the epoch boundary: any composite port
            # that failed during execution is excluded from future rounds.
            self._dead_o2m.update(result.fault_summary.dead_o2m_ports)
            self._dead_m2o.update(result.fault_summary.dead_m2o_ports)
        backups = getattr(self, "_last_backups", None)
        outcome = result.reroute
        anytime = (
            self._anytime.last_outcome if self._anytime is not None else None
        )
        if anytime is not None:
            if anytime.deadline_hit:
                self._consecutive_misses += 1
            else:
                self._consecutive_misses = 0
        shed_epoch = self._shed_epoch
        self._shed_epoch = 0.0
        report = EpochReport(
            epoch=epoch,
            offered_volume=offered,
            scheduled_volume=offered,
            served_volume=float(served.sum()),
            completion_time=result.completion_time,
            n_configs=result.n_configs,
            makespan=result.makespan,
            backlog_after=self._voqs.backlog,
            stranded_volume=float(residual.sum()),
            released_composite=result.released_composite,
            dead_o2m=tuple(sorted(self._dead_o2m)),
            dead_m2o=tuple(sorted(self._dead_m2o)),
            backups_armed=backups.n_armed if backups is not None else 0,
            backup_plan_ms=backups.plan_seconds * 1e3 if backups is not None else 0.0,
            reroute_swaps=outcome.n_swaps if outcome is not None else 0,
            recovery_ms=outcome.recovery_ms if outcome is not None else 0.0,
            reparked_mb=outcome.reparked_mb if outcome is not None else 0.0,
            deadline_hit=anytime.deadline_hit if anytime is not None else False,
            fallback_level=anytime.fallback_level if anytime is not None else 0,
            schedule_ms=anytime.schedule_ms if anytime is not None else 0.0,
            schedule_age_epochs=(
                anytime.schedule_age_epochs if anytime is not None else 0
            ),
            shed_volume=shed_epoch,
        )
        if self.journal is not None:
            diagnostics = [
                diag.to_dict()
                for diag in getattr(self.scheduler, "last_diagnostics", [])
            ]
            self.journal.append(
                {"kind": "epoch", "report": asdict(report), "diagnostics": diagnostics}
            )
        if obs.active():
            # Per-epoch schedule-quality audit (deterministic for a seeded
            # arrival process): what the closed loop decided and carried.
            obs.get_tracer().event(
                "controller.epoch",
                epoch=epoch,
                offered_mb=offered,
                served_mb=report.served_volume,
                backlog_mb=report.backlog_after,
                stranded_mb=report.stranded_volume,
                configs=report.n_configs,
                dead_ports=len(report.dead_o2m) + len(report.dead_m2o),
                reroute_swaps=report.reroute_swaps,
                deadline_hit=report.deadline_hit,
                fallback_level=report.fallback_level,
                shed_mb=report.shed_volume,
            )
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "controller_epochs_total", "control epochs executed"
                ).inc()
                metrics.counter(
                    "controller_stranded_mb_total",
                    "volume (Mb) scheduled but not delivered, carried over",
                ).inc(report.stranded_volume)
                metrics.gauge(
                    "controller_backlog_mb", "VOQ backlog after the latest epoch"
                ).set(report.backlog_after)
                if report.shed_volume:
                    metrics.counter(
                        "controller_shed_mb_total",
                        "arrival volume (Mb) refused by backpressure",
                    ).inc(report.shed_volume)
        return report, result

    def run(self, arrivals: ArrivalProcess, n_epochs: int) -> "list[EpochReport]":
        """Drive ``n_epochs`` epochs of offer → schedule → execute."""
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        reports = []
        for epoch in range(n_epochs):
            self.offer(arrivals(epoch))
            report, _result = self.run_epoch(epoch)
            reports.append(report)
        return reports

    # ------------------------------------------------------------------ #

    def _execute(self, demand: np.ndarray, epoch: int = 0) -> SimulationResult:
        self._last_backups = None
        injector = None
        if self.fault_plan is not None:
            injector = self.fault_plan.injector(self.params.n_ports, stream=epoch)
            # Ports that died in earlier epochs stay dead — pre-seed the
            # fresh realization so no second outage draw is made for them.
            injector.mark_dead("o2m", self._dead_o2m)
            injector.mark_dead("m2o", self._dead_m2o)
        if self._cp_scheduler is not None:
            # The anytime wrapper (when armed) degrades down the fallback
            # ladder instead of blowing the epoch's scheduling budget; the
            # BackupPlanner below keeps using the raw cp-scheduler — backup
            # precompute has its own timing story (see faults/reroute.py).
            cp_front = self._anytime if self._anytime is not None else self._cp_scheduler
            cp_schedule = cp_front.schedule(
                demand,
                self.params,
                blocked_o2m=self._dead_o2m or None,
                blocked_m2o=self._dead_m2o or None,
            )
            backups = None
            if self._planner is not None:
                backups = self._planner.plan(
                    demand,
                    cp_schedule,
                    self.params,
                    blocked_o2m=self._dead_o2m,
                    blocked_m2o=self._dead_m2o,
                )
            self._last_backups = backups
            return simulate_cp(
                demand,
                cp_schedule,
                self.params,
                horizon=self.epoch_duration,
                faults=injector,
                backups=backups,
            )
        schedule = self.scheduler.schedule(demand, self.params)
        return simulate_hybrid(
            demand, schedule, self.params, horizon=self.epoch_duration, faults=injector
        )
