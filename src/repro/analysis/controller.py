"""Closed-loop epoch controller — VOQ-driven online operation (§2.1).

The paper's switch model builds each scheduling round's demand matrix from
the VOQ occupancies ("The occupancy of these VOQs can be used to build the
demand matrix").  This module closes that loop for multi-epoch operation:

1. arrivals enqueue into the :class:`~repro.switch.voq.VirtualOutputQueues`;
2. at each epoch boundary the controller snapshots the occupancy, runs the
   configured scheduler (h-Switch or cp-Switch), and executes the schedule
   in the fluid simulator — to completion, or bounded by the epoch length;
3. the next epoch's arrivals accumulate (leftovers stay queued) and the
   loop repeats.

This is how a deployment would actually drive the scheduling algorithms,
and it surfaces behaviour single-shot experiments cannot: backlog
evolution under sustained load, and whether the switch *keeps up* — a
bounded epoch whose arrivals exceed its service capacity grows backlog
epoch over epoch.

With a :class:`~repro.faults.plan.FaultPlan` the loop also closes over
hardware faults: each epoch executes under a fresh realization of the plan
(stream = epoch index, so whole trajectories replay from one seed), and at
the epoch boundary the controller *detects* composite-path ports that died
during execution and excludes them from the next scheduling round — the
demand reduction's composite column/row is masked, so demand that would
have parked on dead hardware stays on the regular paths.  Stranded backlog
(volume a faulted or truncated epoch could not deliver) remains queued in
the VOQs and is retried in the next round automatically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.scheduler import CpSwitchScheduler
from repro.faults.plan import FaultPlan
from repro.faults.reroute import BackupPlanner
from repro.hybrid.base import HybridScheduler
from repro.runner.journal import RunJournal
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams
from repro.switch.voq import VirtualOutputQueues
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: An arrival process: epoch index -> demand-matrix increment (Mb).
ArrivalProcess = Callable[[int], np.ndarray]


@dataclass(frozen=True)
class EpochReport:
    """Outcome of one control epoch.

    ``stranded_volume`` is the demand this epoch scheduled but could not
    deliver (it stays queued and is retried next epoch);
    ``released_composite`` is the volume that fell back from dead composite
    paths to the regular paths during the epoch; ``dead_o2m``/``dead_m2o``
    are the composite ports known dead *after* the epoch — the next
    scheduling round excludes them.

    With fast-reroute enabled, ``backups_armed`` / ``backup_plan_ms``
    record the per-epoch backup precompute, and ``reroute_swaps`` /
    ``recovery_ms`` / ``reparked_mb`` the mid-epoch swaps executed
    (``recovery_ms`` is the worst detection-to-resumption latency).
    """

    epoch: int
    offered_volume: float
    scheduled_volume: float
    served_volume: float
    completion_time: float
    n_configs: int
    makespan: float
    backlog_after: float
    stranded_volume: float = 0.0
    released_composite: float = 0.0
    dead_o2m: "tuple[int, ...]" = ()
    dead_m2o: "tuple[int, ...]" = ()
    backups_armed: int = 0
    backup_plan_ms: float = 0.0
    reroute_swaps: int = 0
    recovery_ms: float = 0.0
    reparked_mb: float = 0.0

    @property
    def kept_up(self) -> bool:
        """Whether the epoch drained everything that was queued."""
        return self.backlog_after <= VOLUME_TOL * 1e3


@dataclass
class EpochController:
    """Runs the schedule/execute loop over successive epochs.

    Parameters
    ----------
    params:
        Switch parameters.
    scheduler:
        The h-Switch scheduling algorithm.
    use_composite_paths:
        Schedule as a cp-Switch (Algorithm 4 wrapping ``scheduler``)
        instead of a plain h-Switch.
    epoch_duration:
        Wall-clock budget (ms) per epoch.  ``None`` lets every epoch run
        its schedule to completion (no backlog can survive an epoch);
        a finite budget truncates execution and carries leftovers over —
        the sustained-load regime.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into every
        epoch's execution (stream = epoch index).  Composite ports observed
        dead are excluded from all subsequent scheduling rounds.
    fast_reroute:
        Precompute a :class:`~repro.faults.reroute.BackupSet` for every
        epoch's cp-Switch schedule and arm the simulator's mid-epoch
        hot-swap: a composite-port outage recovers at the current phase
        boundary instead of degrading to an EPS-only drain for the rest of
        the epoch.  Requires ``use_composite_paths``; fault-free epochs are
        bit-identical with or without it.
    journal:
        Optional :class:`~repro.runner.journal.RunJournal` receiving one
        ``epoch`` record (the :class:`EpochReport` fields plus any
        scheduler watchdog diagnostics) per epoch, atomically — a killed
        multi-epoch run keeps every completed epoch's report on disk.
    """

    params: SwitchParams
    scheduler: HybridScheduler
    use_composite_paths: bool = False
    epoch_duration: "float | None" = None
    fault_plan: "FaultPlan | None" = None
    journal: "RunJournal | None" = None
    fast_reroute: bool = False
    _voqs: VirtualOutputQueues = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.epoch_duration is not None and self.epoch_duration <= 0:
            raise ValueError(f"epoch_duration must be positive, got {self.epoch_duration}")
        if self.fast_reroute and not self.use_composite_paths:
            raise ValueError(
                "fast_reroute repairs composite-path outages; it requires "
                "use_composite_paths=True"
            )
        self._voqs = VirtualOutputQueues(self.params.n_ports)
        self._cp_scheduler = (
            CpSwitchScheduler(self.scheduler) if self.use_composite_paths else None
        )
        self._planner = (
            BackupPlanner(self._cp_scheduler) if self.fast_reroute else None
        )
        self._dead_o2m: "set[int]" = set()
        self._dead_m2o: "set[int]" = set()

    @property
    def voqs(self) -> VirtualOutputQueues:
        return self._voqs

    @property
    def dead_composite_ports(self) -> "tuple[tuple[int, ...], tuple[int, ...]]":
        """Composite ports detected dead so far, as (o2m, m2o) tuples."""
        return tuple(sorted(self._dead_o2m)), tuple(sorted(self._dead_m2o))

    # ------------------------------------------------------------------ #

    def offer(self, arrivals: np.ndarray) -> float:
        """Enqueue an arrival demand matrix; returns the offered volume."""
        arrivals = check_demand_matrix(arrivals)
        if arrivals.shape[0] != self.params.n_ports:
            raise ValueError(
                f"arrivals are {arrivals.shape[0]}x{arrivals.shape[1]} but the "
                f"switch has {self.params.n_ports} ports"
            )
        rows, cols = np.nonzero(arrivals)
        for i, j in zip(rows.tolist(), cols.tolist()):
            self._voqs.enqueue(i, j, float(arrivals[i, j]))
        return float(arrivals.sum())

    def run_epoch(self, epoch: int = 0) -> "tuple[EpochReport, SimulationResult]":
        """Snapshot the VOQs, schedule, execute (bounded by the epoch).

        Under a fault plan, execution runs against a fresh fault
        realization; afterwards the controller harvests newly dead
        composite ports (they are masked out of the next round's demand
        reduction) while stranded backlog stays queued for retry.
        """
        demand = self._voqs.occupancy.copy()
        offered = float(demand.sum())
        with obs.profiled("controller.epoch", epoch=epoch) as epoch_span:
            result = self._execute(demand, epoch)
            epoch_span.set(offered_mb=offered, configs=result.n_configs)
        residual = result.residual if result.residual is not None else np.zeros_like(demand)
        served = np.maximum(demand - residual, 0.0)
        self._voqs.serve_matrix(served)
        self._voqs.check_conservation()
        if result.fault_summary is not None:
            # Fault detection at the epoch boundary: any composite port
            # that failed during execution is excluded from future rounds.
            self._dead_o2m.update(result.fault_summary.dead_o2m_ports)
            self._dead_m2o.update(result.fault_summary.dead_m2o_ports)
        backups = getattr(self, "_last_backups", None)
        outcome = result.reroute
        report = EpochReport(
            epoch=epoch,
            offered_volume=offered,
            scheduled_volume=offered,
            served_volume=float(served.sum()),
            completion_time=result.completion_time,
            n_configs=result.n_configs,
            makespan=result.makespan,
            backlog_after=self._voqs.backlog,
            stranded_volume=float(residual.sum()),
            released_composite=result.released_composite,
            dead_o2m=tuple(sorted(self._dead_o2m)),
            dead_m2o=tuple(sorted(self._dead_m2o)),
            backups_armed=backups.n_armed if backups is not None else 0,
            backup_plan_ms=backups.plan_seconds * 1e3 if backups is not None else 0.0,
            reroute_swaps=outcome.n_swaps if outcome is not None else 0,
            recovery_ms=outcome.recovery_ms if outcome is not None else 0.0,
            reparked_mb=outcome.reparked_mb if outcome is not None else 0.0,
        )
        if self.journal is not None:
            diagnostics = [
                diag.to_dict()
                for diag in getattr(self.scheduler, "last_diagnostics", [])
            ]
            self.journal.append(
                {"kind": "epoch", "report": asdict(report), "diagnostics": diagnostics}
            )
        if obs.active():
            # Per-epoch schedule-quality audit (deterministic for a seeded
            # arrival process): what the closed loop decided and carried.
            obs.get_tracer().event(
                "controller.epoch",
                epoch=epoch,
                offered_mb=offered,
                served_mb=report.served_volume,
                backlog_mb=report.backlog_after,
                stranded_mb=report.stranded_volume,
                configs=report.n_configs,
                dead_ports=len(report.dead_o2m) + len(report.dead_m2o),
                reroute_swaps=report.reroute_swaps,
            )
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "controller_epochs_total", "control epochs executed"
                ).inc()
                metrics.counter(
                    "controller_stranded_mb_total",
                    "volume (Mb) scheduled but not delivered, carried over",
                ).inc(report.stranded_volume)
                metrics.gauge(
                    "controller_backlog_mb", "VOQ backlog after the latest epoch"
                ).set(report.backlog_after)
        return report, result

    def run(self, arrivals: ArrivalProcess, n_epochs: int) -> "list[EpochReport]":
        """Drive ``n_epochs`` epochs of offer → schedule → execute."""
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        reports = []
        for epoch in range(n_epochs):
            self.offer(arrivals(epoch))
            report, _result = self.run_epoch(epoch)
            reports.append(report)
        return reports

    # ------------------------------------------------------------------ #

    def _execute(self, demand: np.ndarray, epoch: int = 0) -> SimulationResult:
        self._last_backups = None
        injector = None
        if self.fault_plan is not None:
            injector = self.fault_plan.injector(self.params.n_ports, stream=epoch)
            # Ports that died in earlier epochs stay dead — pre-seed the
            # fresh realization so no second outage draw is made for them.
            injector.mark_dead("o2m", self._dead_o2m)
            injector.mark_dead("m2o", self._dead_m2o)
        if self._cp_scheduler is not None:
            cp_schedule = self._cp_scheduler.schedule(
                demand,
                self.params,
                blocked_o2m=self._dead_o2m or None,
                blocked_m2o=self._dead_m2o or None,
            )
            backups = None
            if self._planner is not None:
                backups = self._planner.plan(
                    demand,
                    cp_schedule,
                    self.params,
                    blocked_o2m=self._dead_o2m,
                    blocked_m2o=self._dead_m2o,
                )
            self._last_backups = backups
            return simulate_cp(
                demand,
                cp_schedule,
                self.params,
                horizon=self.epoch_duration,
                faults=injector,
                backups=backups,
            )
        schedule = self.scheduler.schedule(demand, self.params)
        return simulate_hybrid(
            demand, schedule, self.params, horizon=self.epoch_duration, faults=injector
        )
