"""The h-Switch vs cp-Switch comparison experiment (§3's procedure).

For each random demand matrix:

1. schedule it for the **h-Switch** with the chosen sub-scheduler
   (Solstice or Eclipse) and execute online in the fluid simulator;
2. schedule the *same* demand for the **cp-Switch** — the same
   sub-scheduler wrapped by Algorithm 4 — and execute online;
3. record for both: completion time of the total demand, coflow completion
   of the one-to-many and many-to-one subsets ("we measure the metrics of
   the same demand for the h-Switch" — the masks make the subsets
   identical on both switches), fraction of demand served by the OCS
   within the scheduling window, OCS configuration count, and scheduler
   wall time (for Tables 1–2).

Trial counts: the paper averages 100 random demands per point; the default
here is smaller so the full benchmark suite stays laptop-friendly, and is
overridable via the ``REPRO_SEEDS`` environment variable or the
``n_trials`` argument.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.analysis.aggregate import Aggregate, aggregate
from repro.core.config import FilterConfig
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.base import HybridScheduler, make_scheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams, ocs_params
from repro.utils.rng import spawn_rngs
from repro.workloads.base import DemandSpec, Workload

#: Default number of random demand matrices per experiment point.
DEFAULT_TRIALS: int = 5


def default_trials() -> int:
    """Trial count: ``REPRO_SEEDS`` env var or :data:`DEFAULT_TRIALS`."""
    raw = os.environ.get("REPRO_SEEDS")
    if raw is None:
        return DEFAULT_TRIALS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SEEDS must be an integer >= 1, got {raw!r} "
            "(unset it or export e.g. REPRO_SEEDS=5)"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_SEEDS must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class TrialMetrics:
    """Metrics of one schedule execution on one demand matrix."""

    completion_total: float
    completion_o2m: float
    completion_m2o: float
    ocs_fraction: float
    n_configs: int
    sched_seconds: float
    makespan: float
    composite_volume: float = 0.0


@dataclass(frozen=True)
class ComparisonAggregate:
    """Aggregated h-Switch vs cp-Switch metrics for one experiment point."""

    n_ports: int
    h_completion_total: Aggregate
    cp_completion_total: Aggregate
    h_completion_o2m: Aggregate
    cp_completion_o2m: Aggregate
    h_completion_m2o: Aggregate
    cp_completion_m2o: Aggregate
    h_ocs_fraction: Aggregate
    cp_ocs_fraction: Aggregate
    h_configs: Aggregate
    cp_configs: Aggregate
    h_sched_seconds: Aggregate
    cp_sched_seconds: Aggregate
    n_trials: int

    @property
    def completion_improvement(self) -> float:
        """Relative total-completion-time reduction of cp over h (0..1)."""
        if self.h_completion_total.mean == 0:
            return 0.0
        return 1.0 - self.cp_completion_total.mean / self.h_completion_total.mean

    @property
    def utilization_gain(self) -> float:
        """cp OCS fraction divided by h OCS fraction."""
        if self.h_ocs_fraction.mean == 0:
            return float("nan")
        return self.cp_ocs_fraction.mean / self.h_ocs_fraction.mean


@dataclass
class ExperimentConfig:
    """Everything one comparison point needs.

    Parameters
    ----------
    workload:
        Demand generator.
    params:
        Switch parameters (radix, rates, δ).
    scheduler:
        h-Switch sub-scheduler instance or name ("solstice" / "eclipse").
    n_trials:
        Random demand matrices to average over (``None`` → env default).
    seed:
        Root seed; per-trial generators are spawned from it.
    window:
        Window (ms) for the OCS-fraction metric; ``None`` uses the Eclipse
        pairing for this OCS class (1 ms fast / 100 ms slow).
    filter_config:
        cp-Switch (Rt, Bt) resolution.
    """

    workload: Workload
    params: SwitchParams
    scheduler: "HybridScheduler | str" = "solstice"
    n_trials: "int | None" = None
    seed: int = 2016
    window: "float | None" = None
    filter_config: FilterConfig = field(default_factory=FilterConfig)

    def resolved_scheduler(self) -> HybridScheduler:
        if isinstance(self.scheduler, str):
            return make_scheduler(self.scheduler)
        return self.scheduler

    def resolved_window(self) -> float:
        if self.window is not None:
            return float(self.window)
        return EclipseScheduler().resolved_window(self.params)

    def resolved_trials(self) -> int:
        return self.n_trials if self.n_trials is not None else default_trials()


def run_comparison(config: ExperimentConfig) -> ComparisonAggregate:
    """Run the full h vs cp comparison for one experiment point."""
    scheduler = config.resolved_scheduler()
    cp_scheduler = CpSwitchScheduler(scheduler, filter_config=config.filter_config)
    window = config.resolved_window()
    n_trials = config.resolved_trials()
    params = config.params

    h_rows: list[TrialMetrics] = []
    cp_rows: list[TrialMetrics] = []
    for rng in spawn_rngs(config.seed, n_trials):
        spec = config.workload.generate(params.n_ports, rng)
        h_rows.append(_run_h_trial(spec, scheduler, params, window))
        cp_rows.append(_run_cp_trial(spec, cp_scheduler, params, window))

    def agg(rows: list[TrialMetrics], attr: str) -> Aggregate:
        return aggregate([getattr(row, attr) for row in rows])

    return ComparisonAggregate(
        n_ports=params.n_ports,
        h_completion_total=agg(h_rows, "completion_total"),
        cp_completion_total=agg(cp_rows, "completion_total"),
        h_completion_o2m=agg(h_rows, "completion_o2m"),
        cp_completion_o2m=agg(cp_rows, "completion_o2m"),
        h_completion_m2o=agg(h_rows, "completion_m2o"),
        cp_completion_m2o=agg(cp_rows, "completion_m2o"),
        h_ocs_fraction=agg(h_rows, "ocs_fraction"),
        cp_ocs_fraction=agg(cp_rows, "ocs_fraction"),
        h_configs=agg(h_rows, "n_configs"),
        cp_configs=agg(cp_rows, "n_configs"),
        h_sched_seconds=agg(h_rows, "sched_seconds"),
        cp_sched_seconds=agg(cp_rows, "sched_seconds"),
        n_trials=n_trials,
    )


# ---------------------------------------------------------------------- #
# single trials
# ---------------------------------------------------------------------- #


def _run_h_trial(
    spec: DemandSpec,
    scheduler: HybridScheduler,
    params: SwitchParams,
    window: float,
) -> TrialMetrics:
    start = time.perf_counter()
    schedule = scheduler.schedule(spec.demand, params)
    elapsed = time.perf_counter() - start
    result = simulate_hybrid(spec.demand, schedule, params)
    return _metrics(spec, result, elapsed, window)


def _run_cp_trial(
    spec: DemandSpec,
    cp_scheduler: CpSwitchScheduler,
    params: SwitchParams,
    window: float,
) -> TrialMetrics:
    start = time.perf_counter()
    cp_schedule = cp_scheduler.schedule(spec.demand, params)
    elapsed = time.perf_counter() - start
    result = simulate_cp(spec.demand, cp_schedule, params)
    return _metrics(
        spec,
        result,
        elapsed,
        window,
        composite_volume=cp_schedule.reduction.composite_volume,
    )


# ---------------------------------------------------------------------- #
# resumable-sweep building blocks (repro.runner)
# ---------------------------------------------------------------------- #


def make_workload(name: str, params: SwitchParams, skewed_ports: int = 1) -> Workload:
    """Workload factory by name — the string form journaled sweeps store."""
    from repro.workloads import (
        CombinedWorkload,
        SkewedWorkload,
        TypicalBackgroundWorkload,
        VaryingSkewWorkload,
    )

    if name == "skewed":
        return SkewedWorkload.for_params(params)
    if name == "background":
        return TypicalBackgroundWorkload.for_params(params)
    if name == "typical":
        return CombinedWorkload.typical(params)
    if name == "intensive":
        return CombinedWorkload.intensive(params)
    if name == "varying":
        return VaryingSkewWorkload.for_params(params, n_skewed_ports=skewed_ports)
    raise ValueError(f"unknown workload {name!r}")


def trial_rng(seed: int, trial: int) -> np.random.Generator:
    """Generator for trial ``trial`` of a sweep rooted at ``seed``.

    Identical to ``spawn_rngs(seed, n)[trial]`` for any ``n > trial``
    (SeedSequence children depend only on their index), so a trial executed
    alone — e.g. retried in a subprocess worker, or re-run from a resumed
    journal — sees exactly the demand it would have seen in a full
    sequential run.
    """
    return spawn_rngs(seed, trial + 1)[trial]


def _trial_spec(
    workload: str, ocs: str, radix: int, seed: int, trial: int, skewed_ports: int
) -> DemandSpec:
    params = ocs_params(ocs, radix)
    generator = make_workload(workload, params, skewed_ports)
    return generator.generate(radix, trial_rng(seed, trial))


def comparison_trial(
    *,
    workload: str,
    ocs: str,
    radix: int,
    scheduler: str = "solstice",
    seed: int = 2016,
    trial: int = 0,
    skewed_ports: int = 1,
    window: "float | None" = None,
) -> dict:
    """One journaled h-vs-cp comparison trial (JSON in, JSON out).

    This is the unit the sweep runner executes in subprocess workers: every
    argument is a plain JSON scalar (persisted in the journal header), and
    the returned payload is a JSON dict of both switches' metrics plus any
    scheduler watchdog diagnostics.  Trial ``t`` here is bit-identical to
    trial ``t`` of :func:`run_comparison` on the same configuration.
    """
    params = ocs_params(ocs, radix)
    spec = _trial_spec(workload, ocs, radix, seed, trial, skewed_ports)
    inner = make_scheduler(scheduler)
    cp_scheduler = CpSwitchScheduler(inner)
    resolved_window = (
        float(window)
        if window is not None
        else EclipseScheduler().resolved_window(params)
    )
    h = _run_h_trial(spec, inner, params, resolved_window)
    diagnostics = [d.to_dict() for d in getattr(inner, "last_diagnostics", [])]
    cp = _run_cp_trial(spec, cp_scheduler, params, resolved_window)
    diagnostics += [d.to_dict() for d in getattr(inner, "last_diagnostics", [])]
    return {
        "n_ports": radix,
        "trial": trial,
        "h": asdict(h),
        "cp": asdict(cp),
        "diagnostics": diagnostics,
    }


def comparison_demand(
    *,
    workload: str,
    ocs: str,
    radix: int,
    scheduler: str = "solstice",
    seed: int = 2016,
    trial: int = 0,
    skewed_ports: int = 1,
    window: "float | None" = None,
) -> np.ndarray:
    """The exact demand matrix :func:`comparison_trial` schedules.

    Used by the quarantine machinery to write a reproducible ``.npz`` next
    to a failed trial's journal record (``scheduler``/``window`` are
    accepted so the two functions share one kwargs dict).
    """
    return _trial_spec(workload, ocs, radix, seed, trial, skewed_ports).demand


def comparison_from_payloads(payloads: "list[dict]") -> ComparisonAggregate:
    """Rebuild a :class:`ComparisonAggregate` from journaled trial payloads.

    Payloads are sorted by trial index first, so a resumed sweep (which
    sees completed trials in journal order) aggregates bit-identically to
    an uninterrupted run.
    """
    if not payloads:
        raise ValueError("cannot aggregate an empty payload list")
    rows = sorted(payloads, key=lambda p: p["trial"])
    h_rows = [TrialMetrics(**row["h"]) for row in rows]
    cp_rows = [TrialMetrics(**row["cp"]) for row in rows]

    def agg(metric_rows: "list[TrialMetrics]", attr: str) -> Aggregate:
        return aggregate([getattr(row, attr) for row in metric_rows])

    return ComparisonAggregate(
        n_ports=int(rows[0]["n_ports"]),
        h_completion_total=agg(h_rows, "completion_total"),
        cp_completion_total=agg(cp_rows, "completion_total"),
        h_completion_o2m=agg(h_rows, "completion_o2m"),
        cp_completion_o2m=agg(cp_rows, "completion_o2m"),
        h_completion_m2o=agg(h_rows, "completion_m2o"),
        cp_completion_m2o=agg(cp_rows, "completion_m2o"),
        h_ocs_fraction=agg(h_rows, "ocs_fraction"),
        cp_ocs_fraction=agg(cp_rows, "ocs_fraction"),
        h_configs=agg(h_rows, "n_configs"),
        cp_configs=agg(cp_rows, "n_configs"),
        h_sched_seconds=agg(h_rows, "sched_seconds"),
        cp_sched_seconds=agg(cp_rows, "sched_seconds"),
        n_trials=len(rows),
    )


def _metrics(
    spec: DemandSpec,
    result: SimulationResult,
    sched_seconds: float,
    window: float,
    composite_volume: float = 0.0,
) -> TrialMetrics:
    return TrialMetrics(
        completion_total=result.completion_time,
        completion_o2m=result.coflow_completion(spec.o2m_mask),
        completion_m2o=result.coflow_completion(spec.m2o_mask),
        ocs_fraction=result.ocs_fraction_within(window),
        n_configs=result.n_configs,
        sched_seconds=sched_seconds,
        makespan=result.makespan,
        composite_volume=composite_volume,
    )
