"""The h-Switch vs cp-Switch comparison experiment (§3's procedure).

For each random demand matrix:

1. schedule it for the **h-Switch** with the chosen sub-scheduler
   (Solstice or Eclipse) and execute online in the fluid simulator;
2. schedule the *same* demand for the **cp-Switch** — the same
   sub-scheduler wrapped by Algorithm 4 — and execute online;
3. record for both: completion time of the total demand, coflow completion
   of the one-to-many and many-to-one subsets ("we measure the metrics of
   the same demand for the h-Switch" — the masks make the subsets
   identical on both switches), fraction of demand served by the OCS
   within the scheduling window, OCS configuration count, and scheduler
   wall time (for Tables 1–2).

Trial counts: the paper averages 100 random demands per point; the default
here is smaller so the full benchmark suite stays laptop-friendly, and is
overridable via the ``REPRO_SEEDS`` environment variable or the
``n_trials`` argument.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.aggregate import Aggregate, aggregate
from repro.core.config import FilterConfig
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.base import HybridScheduler, make_scheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams
from repro.utils.rng import spawn_rngs
from repro.workloads.base import DemandSpec, Workload

#: Default number of random demand matrices per experiment point.
DEFAULT_TRIALS: int = 5


def default_trials() -> int:
    """Trial count: ``REPRO_SEEDS`` env var or :data:`DEFAULT_TRIALS`."""
    raw = os.environ.get("REPRO_SEEDS")
    if raw is None:
        return DEFAULT_TRIALS
    value = int(raw)
    if value < 1:
        raise ValueError(f"REPRO_SEEDS must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class TrialMetrics:
    """Metrics of one schedule execution on one demand matrix."""

    completion_total: float
    completion_o2m: float
    completion_m2o: float
    ocs_fraction: float
    n_configs: int
    sched_seconds: float
    makespan: float
    composite_volume: float = 0.0


@dataclass(frozen=True)
class ComparisonAggregate:
    """Aggregated h-Switch vs cp-Switch metrics for one experiment point."""

    n_ports: int
    h_completion_total: Aggregate
    cp_completion_total: Aggregate
    h_completion_o2m: Aggregate
    cp_completion_o2m: Aggregate
    h_completion_m2o: Aggregate
    cp_completion_m2o: Aggregate
    h_ocs_fraction: Aggregate
    cp_ocs_fraction: Aggregate
    h_configs: Aggregate
    cp_configs: Aggregate
    h_sched_seconds: Aggregate
    cp_sched_seconds: Aggregate
    n_trials: int

    @property
    def completion_improvement(self) -> float:
        """Relative total-completion-time reduction of cp over h (0..1)."""
        if self.h_completion_total.mean == 0:
            return 0.0
        return 1.0 - self.cp_completion_total.mean / self.h_completion_total.mean

    @property
    def utilization_gain(self) -> float:
        """cp OCS fraction divided by h OCS fraction."""
        if self.h_ocs_fraction.mean == 0:
            return float("nan")
        return self.cp_ocs_fraction.mean / self.h_ocs_fraction.mean


@dataclass
class ExperimentConfig:
    """Everything one comparison point needs.

    Parameters
    ----------
    workload:
        Demand generator.
    params:
        Switch parameters (radix, rates, δ).
    scheduler:
        h-Switch sub-scheduler instance or name ("solstice" / "eclipse").
    n_trials:
        Random demand matrices to average over (``None`` → env default).
    seed:
        Root seed; per-trial generators are spawned from it.
    window:
        Window (ms) for the OCS-fraction metric; ``None`` uses the Eclipse
        pairing for this OCS class (1 ms fast / 100 ms slow).
    filter_config:
        cp-Switch (Rt, Bt) resolution.
    """

    workload: Workload
    params: SwitchParams
    scheduler: "HybridScheduler | str" = "solstice"
    n_trials: "int | None" = None
    seed: int = 2016
    window: "float | None" = None
    filter_config: FilterConfig = field(default_factory=FilterConfig)

    def resolved_scheduler(self) -> HybridScheduler:
        if isinstance(self.scheduler, str):
            return make_scheduler(self.scheduler)
        return self.scheduler

    def resolved_window(self) -> float:
        if self.window is not None:
            return float(self.window)
        return EclipseScheduler().resolved_window(self.params)

    def resolved_trials(self) -> int:
        return self.n_trials if self.n_trials is not None else default_trials()


def run_comparison(config: ExperimentConfig) -> ComparisonAggregate:
    """Run the full h vs cp comparison for one experiment point."""
    scheduler = config.resolved_scheduler()
    cp_scheduler = CpSwitchScheduler(scheduler, filter_config=config.filter_config)
    window = config.resolved_window()
    n_trials = config.resolved_trials()
    params = config.params

    h_rows: list[TrialMetrics] = []
    cp_rows: list[TrialMetrics] = []
    for rng in spawn_rngs(config.seed, n_trials):
        spec = config.workload.generate(params.n_ports, rng)
        h_rows.append(_run_h_trial(spec, scheduler, params, window))
        cp_rows.append(_run_cp_trial(spec, cp_scheduler, params, window))

    def agg(rows: list[TrialMetrics], attr: str) -> Aggregate:
        return aggregate([getattr(row, attr) for row in rows])

    return ComparisonAggregate(
        n_ports=params.n_ports,
        h_completion_total=agg(h_rows, "completion_total"),
        cp_completion_total=agg(cp_rows, "completion_total"),
        h_completion_o2m=agg(h_rows, "completion_o2m"),
        cp_completion_o2m=agg(cp_rows, "completion_o2m"),
        h_completion_m2o=agg(h_rows, "completion_m2o"),
        cp_completion_m2o=agg(cp_rows, "completion_m2o"),
        h_ocs_fraction=agg(h_rows, "ocs_fraction"),
        cp_ocs_fraction=agg(cp_rows, "ocs_fraction"),
        h_configs=agg(h_rows, "n_configs"),
        cp_configs=agg(cp_rows, "n_configs"),
        h_sched_seconds=agg(h_rows, "sched_seconds"),
        cp_sched_seconds=agg(cp_rows, "sched_seconds"),
        n_trials=n_trials,
    )


# ---------------------------------------------------------------------- #
# single trials
# ---------------------------------------------------------------------- #


def _run_h_trial(
    spec: DemandSpec,
    scheduler: HybridScheduler,
    params: SwitchParams,
    window: float,
) -> TrialMetrics:
    start = time.perf_counter()
    schedule = scheduler.schedule(spec.demand, params)
    elapsed = time.perf_counter() - start
    result = simulate_hybrid(spec.demand, schedule, params)
    return _metrics(spec, result, elapsed, window)


def _run_cp_trial(
    spec: DemandSpec,
    cp_scheduler: CpSwitchScheduler,
    params: SwitchParams,
    window: float,
) -> TrialMetrics:
    start = time.perf_counter()
    cp_schedule = cp_scheduler.schedule(spec.demand, params)
    elapsed = time.perf_counter() - start
    result = simulate_cp(spec.demand, cp_schedule, params)
    return _metrics(
        spec,
        result,
        elapsed,
        window,
        composite_volume=cp_schedule.reduction.composite_volume,
    )


def _metrics(
    spec: DemandSpec,
    result: SimulationResult,
    sched_seconds: float,
    window: float,
    composite_volume: float = 0.0,
) -> TrialMetrics:
    return TrialMetrics(
        completion_total=result.completion_time,
        completion_o2m=result.coflow_completion(spec.o2m_mask),
        completion_m2o=result.coflow_completion(spec.m2o_mask),
        ocs_fraction=result.ocs_fraction_within(window),
        n_configs=result.n_configs,
        sched_seconds=sched_seconds,
        makespan=result.makespan,
        composite_volume=composite_volume,
    )
