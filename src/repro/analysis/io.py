"""JSON persistence for schedules and experiment results.

Experiment pipelines want to compute schedules once and re-execute or
re-analyze them later (and to archive the numbers behind EXPERIMENTS.md).
Permutations are stored sparsely — as circuit lists — so even radix-128
schedules stay small.

Round-trip support:

* :class:`~repro.hybrid.schedule.Schedule` ↔ dict / JSON file,
* :class:`~repro.core.scheduler.CpSchedule` → dict (sufficient to
  re-simulate: regular circuits, grants, composite volumes, reduction
  artifacts) and back,
* :class:`~repro.analysis.experiment.ComparisonAggregate` → flat dict for
  tabulation (one-way; aggregates are cheap to recompute).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.aggregate import Aggregate
from repro.analysis.experiment import ComparisonAggregate
from repro.core.reduction import ReducedDemand
from repro.core.scheduler import CompositeScheduleEntry, CpSchedule
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.utils.fileio import atomic_write_json

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------- #
# sparse helpers
# ---------------------------------------------------------------------- #


def _sparse_from_matrix(matrix: np.ndarray) -> "list[list[float]]":
    rows, cols = np.nonzero(matrix)
    return [[int(i), int(j), float(matrix[i, j])] for i, j in zip(rows, cols)]


def _matrix_from_sparse(entries, shape) -> np.ndarray:
    matrix = np.zeros(shape, dtype=np.float64)
    for i, j, value in entries:
        matrix[int(i), int(j)] = float(value)
    return matrix


def _permutation_from_circuits(circuits, size: int) -> np.ndarray:
    perm = np.zeros((size, size), dtype=np.int8)
    for i, j in circuits:
        perm[int(i), int(j)] = 1
    return perm


# ---------------------------------------------------------------------- #
# Schedule
# ---------------------------------------------------------------------- #


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialize an h-Switch schedule."""
    size = schedule.entries[0].size if schedule.entries else 0
    return {
        "format": _FORMAT_VERSION,
        "type": "schedule",
        "size": size,
        "reconfig_delay": schedule.reconfig_delay,
        "entries": [
            {"duration": entry.duration, "circuits": entry.circuits}
            for entry in schedule.entries
        ],
    }


def schedule_from_dict(payload: dict) -> Schedule:
    """Inverse of :func:`schedule_to_dict`."""
    _check_payload(payload, "schedule")
    size = int(payload["size"])
    entries = tuple(
        ScheduleEntry(
            permutation=_permutation_from_circuits(item["circuits"], size),
            duration=float(item["duration"]),
        )
        for item in payload["entries"]
    )
    return Schedule(entries=entries, reconfig_delay=float(payload["reconfig_delay"]))


# ---------------------------------------------------------------------- #
# CpSchedule
# ---------------------------------------------------------------------- #


def cp_schedule_to_dict(schedule: CpSchedule) -> dict:
    """Serialize a cp-Switch schedule, including its reduction artifacts."""
    n = schedule.reduction.n_ports
    return {
        "format": _FORMAT_VERSION,
        "type": "cp-schedule",
        "n_ports": n,
        "reconfig_delay": schedule.reconfig_delay,
        "entries": [
            {
                "duration": entry.duration,
                "circuits": _circuits(entry.regular),
                "o2m_port": entry.o2m_port,
                "m2o_port": entry.m2o_port,
                "composite_served": _sparse_from_matrix(entry.composite_served),
            }
            for entry in schedule.entries
        ],
        "reduction": {
            "reduced": _sparse_from_matrix(schedule.reduction.reduced),
            "filtered": _sparse_from_matrix(schedule.reduction.filtered),
            "o2m_assignment": _sparse_from_matrix(
                schedule.reduction.o2m_assignment.astype(np.float64)
            ),
            "m2o_assignment": _sparse_from_matrix(
                schedule.reduction.m2o_assignment.astype(np.float64)
            ),
            "volume_threshold": schedule.reduction.volume_threshold,
            "fanout_threshold": schedule.reduction.fanout_threshold,
        },
        "filtered_residual": _sparse_from_matrix(schedule.filtered_residual),
        "reduced_schedule": schedule_to_dict(schedule.reduced_schedule),
    }


def cp_schedule_from_dict(payload: dict) -> CpSchedule:
    """Inverse of :func:`cp_schedule_to_dict`."""
    _check_payload(payload, "cp-schedule")
    n = int(payload["n_ports"])
    red = payload["reduction"]
    reduction = ReducedDemand(
        reduced=_matrix_from_sparse(red["reduced"], (n + 1, n + 1)),
        filtered=_matrix_from_sparse(red["filtered"], (n, n)),
        o2m_assignment=_matrix_from_sparse(red["o2m_assignment"], (n, n)).astype(bool),
        m2o_assignment=_matrix_from_sparse(red["m2o_assignment"], (n, n)).astype(bool),
        volume_threshold=float(red["volume_threshold"]),
        fanout_threshold=int(red["fanout_threshold"]),
    )
    entries = tuple(
        CompositeScheduleEntry(
            regular=_permutation_from_circuits(item["circuits"], n),
            duration=float(item["duration"]),
            composite_served=_matrix_from_sparse(item["composite_served"], (n, n)),
            o2m_port=item["o2m_port"],
            m2o_port=item["m2o_port"],
        )
        for item in payload["entries"]
    )
    return CpSchedule(
        entries=entries,
        reconfig_delay=float(payload["reconfig_delay"]),
        reduction=reduction,
        filtered_residual=_matrix_from_sparse(payload["filtered_residual"], (n, n)),
        reduced_schedule=schedule_from_dict(payload["reduced_schedule"]),
    )


def _circuits(permutation: np.ndarray) -> "list[tuple[int, int]]":
    rows, cols = np.nonzero(permutation)
    return list(zip(rows.tolist(), cols.tolist()))


# ---------------------------------------------------------------------- #
# results
# ---------------------------------------------------------------------- #


def comparison_to_dict(result: ComparisonAggregate) -> dict:
    """Flatten a comparison aggregate for tabulation/archival (one-way)."""
    def agg(value: Aggregate) -> dict:
        return {
            "mean": value.mean,
            "std": value.std,
            "min": value.minimum,
            "max": value.maximum,
            "count": value.count,
        }

    return {
        "format": _FORMAT_VERSION,
        "type": "comparison",
        "n_ports": result.n_ports,
        "n_trials": result.n_trials,
        "h": {
            "completion_total": agg(result.h_completion_total),
            "completion_o2m": agg(result.h_completion_o2m),
            "completion_m2o": agg(result.h_completion_m2o),
            "ocs_fraction": agg(result.h_ocs_fraction),
            "configs": agg(result.h_configs),
            "sched_seconds": agg(result.h_sched_seconds),
        },
        "cp": {
            "completion_total": agg(result.cp_completion_total),
            "completion_o2m": agg(result.cp_completion_o2m),
            "completion_m2o": agg(result.cp_completion_m2o),
            "ocs_fraction": agg(result.cp_ocs_fraction),
            "configs": agg(result.cp_configs),
            "sched_seconds": agg(result.cp_sched_seconds),
        },
    }


# ---------------------------------------------------------------------- #
# files
# ---------------------------------------------------------------------- #


def save_json(payload: dict, path: "str | Path") -> Path:
    """Write a serialized object to a JSON file (atomically: a crash mid-
    write leaves either the old file or the complete new one, never a torn
    mixture)."""
    return atomic_write_json(payload, path)


def load_json(path: "str | Path") -> dict:
    """Read a serialized object back."""
    return json.loads(Path(path).read_text())


def _check_payload(payload: dict, expected_type: str) -> None:
    if payload.get("type") != expected_type:
        raise ValueError(
            f"payload type {payload.get('type')!r} != expected {expected_type!r}"
        )
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        got = f"v{version}" if version is not None else "with no version field"
        raise ValueError(
            f"unsupported {expected_type} format {got} "
            f"(expected v{_FORMAT_VERSION}); re-export it with this library "
            "version or convert the file"
        )
