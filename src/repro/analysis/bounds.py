"""Analytic completion-time lower bounds.

Simulation numbers mean more next to the physics: these bounds say how
fast *any* schedule could possibly deliver a demand matrix on a given
switch, so an experiment can report "cp-Switch is within x % of the
fluid optimum" instead of a bare millisecond count.

All bounds are per-port capacity arguments (conservative — they ignore
reconfiguration penalties unless stated):

* :func:`eps_only_bound` — the busiest port through the EPS alone.
* :func:`hybrid_bound` — the busiest port through EPS + one OCS circuit
  (a port can use both fabrics concurrently, but only one circuit at a
  time), plus at least one reconfiguration if the OCS is used at all.
* :func:`cp_bound` — the hybrid bound with composite paths: a one-to-many
  sender may additionally push its aggregate through the composite path's
  OCS leg, so its effective egress grows to ``Ce + 2·Co`` only if it holds
  both a direct circuit *and* the composite path — the bound uses
  ``Ce + Co`` per port plus the composite path as a shared extra ``Co``
  resource across all ports of each direction.
* :func:`reconfiguration_bound` — δ times the minimum number of distinct
  configurations any all-OCS service of the demand needs (the maximum
  row/column *count* of entries too big for the EPS share, a Birkhoff
  argument).

Every bound is validated in the test suite against the simulator: no
simulated completion may undercut it.
"""

from __future__ import annotations

import numpy as np

from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix


def _port_loads(demand: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    return demand.sum(axis=1), demand.sum(axis=0)


def eps_only_bound(demand: np.ndarray, params: SwitchParams) -> float:
    """Completion lower bound (ms) using the EPS alone."""
    demand = check_demand_matrix(demand)
    row_loads, col_loads = _port_loads(demand)
    return float(max(row_loads.max(), col_loads.max()) / params.eps_rate)


def hybrid_bound(demand: np.ndarray, params: SwitchParams) -> float:
    """Completion lower bound (ms) for any h-Switch schedule.

    Each port moves at most ``Ce + Co`` concurrently (its EPS link plus
    one circuit); if any single entry cannot be finished by the EPS alone
    within that bound, at least one reconfiguration's δ is also paid.
    """
    demand = check_demand_matrix(demand)
    row_loads, col_loads = _port_loads(demand)
    port_bound = max(row_loads.max(), col_loads.max()) / (
        params.eps_rate + params.ocs_rate
    )
    if port_bound <= 0:
        return 0.0
    # Does the fluid EPS alone meet this bound?  If not, some OCS use — and
    # with it one δ — is unavoidable.
    needs_ocs = (
        max(row_loads.max(), col_loads.max()) / params.eps_rate > port_bound + 1e-12
    )
    return float(port_bound + (params.reconfig_delay if needs_ocs else 0.0))


def cp_bound(demand: np.ndarray, params: SwitchParams) -> float:
    """Completion lower bound (ms) for any cp-Switch schedule.

    On top of the per-port ``Ce + Co``, the (single) one-to-many composite
    path adds at most ``Co`` of shared egress capacity across *all*
    senders, and the many-to-one path ``Co`` across all receivers:

    ``t ≥ total_row_overload / Co_extra`` arguments reduce, per port, to
    ``load / (Ce + 2·Co)`` only when that port holds both resources for
    the entire duration — so the safe (weaker) per-port form used here is
    ``load / (Ce + 2·Co)``, plus one δ when the EPS alone cannot make it.
    """
    demand = check_demand_matrix(demand)
    row_loads, col_loads = _port_loads(demand)
    peak = max(row_loads.max(), col_loads.max())
    port_bound = peak / (params.eps_rate + 2 * params.ocs_rate)
    if port_bound <= 0:
        return 0.0
    needs_ocs = peak / params.eps_rate > port_bound + 1e-12
    return float(port_bound + (params.reconfig_delay if needs_ocs else 0.0))


def reconfiguration_bound(demand: np.ndarray, params: SwitchParams, horizon: float) -> float:
    """Lower bound (ms) on OCS dark time if everything rides the OCS.

    If the demand were served by circuits alone within ``horizon``, each
    port's distinct partners need distinct configurations, so at least
    ``max row/column non-zero count`` configurations — and that many δ of
    dark time — are required.  (The h-Switch escapes via the EPS for small
    entries; the cp-Switch via composite paths.  The bound quantifies what
    they are escaping from.)
    """
    demand = check_demand_matrix(demand)
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    nonzero = demand > VOLUME_TOL
    fanout = max(int(nonzero.sum(axis=1).max()), int(nonzero.sum(axis=0).max()))
    return float(fanout * params.reconfig_delay)


def efficiency(completion_time: float, bound: float) -> float:
    """``bound / completion`` — 1.0 means the schedule achieved the bound."""
    if completion_time <= 0:
        return 1.0 if bound <= 0 else 0.0
    return min(1.0, bound / completion_time)
