"""Scheduling under imperfect demand knowledge.

The paper (like Solstice and Eclipse) assumes the scheduler sees the exact
demand matrix — VOQ occupancies at the scheduling instant (§2.1).  A real
controller works from an *estimate*: measurements are noisy, collection is
stale by at least a control-loop delay, and small flows may be missed
entirely.  This module quantifies how the h-Switch and cp-Switch schedules
degrade when computed from a perturbed estimate but executed against the
true demand.

Perturbation model (:func:`perturb_demand`):

* ``noise`` — per-entry multiplicative error, uniform in [1−noise, 1+noise];
* ``staleness`` — fraction of every entry's volume that arrived after the
  snapshot (the scheduler underestimates uniformly);
* ``miss_rate`` — fraction of non-zero entries invisible to the estimator.

Execution (:func:`simulate_with_estimate`): the schedule computed from the
estimate runs against the true demand.  For the cp-Switch, the composite
paths serve whatever is *actually* queued on the filtered entries (at most
the true volume), and true demand the scheduler never saw stays on the
regular paths — matching what the hardware would do.

Hardware robustness (:func:`fault_trial`): the complementary question —
perfect knowledge, imperfect *fabric*.  A :class:`~repro.faults.plan.FaultPlan`
is injected into the execution of both switches' schedules, and the h vs cp
completion-time gap under growing fault rates is the degradation curve of
``python -m repro robustness`` and
:func:`repro.analysis.figures.degradation_curve`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.scheduler import CpSchedule, CpSwitchScheduler
from repro.faults.plan import FaultPlan
from repro.faults.reroute import BackupPlanner
from repro.hybrid.base import HybridScheduler
from repro.hybrid.schedule import Schedule
from repro.sim.cp_sim import _run as _run_cp
from repro.sim.cp_sim import simulate_cp
from repro.sim.hybrid_sim import simulate_hybrid
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams
from repro.utils.rng import ensure_rng
from repro.utils.validation import VOLUME_TOL, check_demand_matrix, check_nonnegative


def perturb_demand(
    demand: np.ndarray,
    rng=None,
    *,
    noise: float = 0.0,
    staleness: float = 0.0,
    miss_rate: float = 0.0,
) -> np.ndarray:
    """The estimator's view of ``demand``.

    Parameters
    ----------
    demand:
        True demand matrix (Mb).
    noise:
        Relative per-entry measurement error amplitude (0 = exact).
    staleness:
        Fraction of each entry's volume the snapshot has not seen yet
        (0 = fresh, 0.3 = 30 % of the traffic arrived after the snapshot).
        Accepts the closed interval [0, 1]: ``staleness=1.0`` models a
        snapshot taken before any traffic arrived — the estimate is all
        zeros, exactly like ``miss_rate=1.0``.
    miss_rate:
        Probability that a non-zero entry is absent from the estimate,
        in [0, 1].  ``miss_rate=1.0`` misses everything (zero estimate).

    Both fractional parameters share the same closed-interval validation:
    the boundary value 1.0 is legal for each and yields the fully blind
    estimator, which downstream schedulers handle by emitting an empty
    schedule (everything rides the EPS).
    """
    demand = check_demand_matrix(demand)
    check_nonnegative("noise", noise)
    if not (0.0 <= staleness <= 1.0):
        raise ValueError(f"staleness must be in [0, 1], got {staleness}")
    if not (0.0 <= miss_rate <= 1.0):
        raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
    rng = ensure_rng(rng)
    estimate = demand * (1.0 - staleness)
    if noise > 0:
        factors = rng.uniform(1.0 - noise, 1.0 + noise, size=demand.shape)
        estimate = estimate * factors
    if miss_rate > 0:
        visible = rng.random(demand.shape) >= miss_rate
        estimate = estimate * visible
    np.clip(estimate, 0.0, None, out=estimate)
    return estimate


def simulate_with_estimate(
    true_demand: np.ndarray,
    schedule: "Schedule | CpSchedule",
    params: SwitchParams,
) -> SimulationResult:
    """Execute an estimate-derived schedule against the true demand.

    h-Switch schedules execute directly (circuits serve whatever is truly
    queued).  cp-Switch schedules park ``min(filtered_estimate, true)`` on
    the composite residual; everything else — including demand the
    estimator missed — stays on the regular paths.
    """
    true_demand = check_demand_matrix(true_demand)
    if isinstance(schedule, CpSchedule):
        filtered = np.minimum(schedule.reduction.filtered, true_demand)

        def composites_for(entry):
            from repro.sim.engine import CompositeService

            services = []
            if entry.o2m_port is not None:
                services.append(CompositeService(kind="o2m", port=entry.o2m_port))
            if entry.m2o_port is not None:
                services.append(CompositeService(kind="m2o", port=entry.m2o_port))
            return services

        return _run_cp(
            true_demand,
            schedule.entries,
            filtered,
            composites_for,
            lambda entry: entry.regular,
            params,
            None,
            n_configs=schedule.n_configs,
            makespan=schedule.makespan,
        )
    return simulate_hybrid(true_demand, schedule, params)


def robustness_trial(
    true_demand: np.ndarray,
    scheduler: HybridScheduler,
    params: SwitchParams,
    rng=None,
    *,
    noise: float = 0.0,
    staleness: float = 0.0,
    miss_rate: float = 0.0,
) -> "tuple[SimulationResult, SimulationResult]":
    """One (h result, cp result) pair under the given estimation errors."""
    rng = ensure_rng(rng)
    estimate = perturb_demand(
        true_demand, rng, noise=noise, staleness=staleness, miss_rate=miss_rate
    )
    if estimate.max(initial=0.0) <= VOLUME_TOL:
        # A fully blind estimator schedules nothing; everything rides EPS.
        # Both switches degrade to the same empty schedule, but each gets
        # its own independent execution: callers mutate/inspect the two
        # results separately, so returning one aliased object would let a
        # change through one handle corrupt the other.
        h_schedule = Schedule(entries=(), reconfig_delay=params.reconfig_delay)
        h_result = simulate_hybrid(true_demand, h_schedule, params)
        cp_result = simulate_hybrid(true_demand, h_schedule, params)
        return h_result, cp_result
    h_schedule = scheduler.schedule(estimate, params)
    h_result = simulate_with_estimate(true_demand, h_schedule, params)
    cp_schedule = CpSwitchScheduler(scheduler).schedule(estimate, params)
    cp_result = simulate_with_estimate(true_demand, cp_schedule, params)
    return h_result, cp_result


# ---------------------------------------------------------------------- #
# resumable-sweep building blocks (repro.runner)
# ---------------------------------------------------------------------- #


def _sweep_demand(ocs: str, radix: int, seed: int, trial: int) -> np.ndarray:
    """Demand for trial ``trial`` of a robustness sweep (skewed workload,
    same per-trial stream as the sequential sweeps use)."""
    from repro.analysis.experiment import trial_rng
    from repro.switch.params import ocs_params
    from repro.workloads import SkewedWorkload

    params = ocs_params(ocs, radix)
    workload = SkewedWorkload.for_params(params)
    return workload.generate(radix, trial_rng(seed, trial)).demand


def robustness_demand(*, ocs: str, radix: int, seed: int = 2016, trial: int = 0, **_ignored) -> np.ndarray:
    """Quarantine hook: the demand matrix a robustness sweep trial uses.

    Extra kwargs (``error``, ``rate``, …) are accepted and ignored so the
    same kwargs dict drives both the trial and its reproducer.
    """
    return _sweep_demand(ocs, radix, seed, trial)


def error_trial(
    *, ocs: str, radix: int, seed: int = 2016, trial: int = 0, error: float = 0.0
) -> dict:
    """One journaled estimation-error trial (JSON in, JSON out).

    Applies ``error`` as noise, staleness and miss rate at once — the CLI's
    estimation-error sweep — and reports both switches' completion times.
    """
    from repro.hybrid.solstice import SolsticeScheduler
    from repro.switch.params import ocs_params

    params = ocs_params(ocs, radix)
    demand = _sweep_demand(ocs, radix, seed, trial)
    h_result, cp_result = robustness_trial(
        demand,
        SolsticeScheduler(),
        params,
        np.random.default_rng(seed + trial),
        noise=error,
        staleness=error,
        miss_rate=error,
    )
    return {
        "trial": trial,
        "error": float(error),
        "h": h_result.completion_time,
        "cp": cp_result.completion_time,
    }


def fault_rate_trial(
    *,
    ocs: str,
    radix: int,
    seed: int = 2016,
    trial: int = 0,
    rate: float = 0.0,
    rate_index: int = 0,
) -> dict:
    """One journaled hardware-fault trial (JSON in, JSON out).

    Executes both switches' schedules under a uniform fault plan at
    ``rate``; the plan seed matches
    :func:`repro.analysis.figures.degradation_curve` exactly, so journaled
    and sequential sweeps agree bit-for-bit.
    """
    from repro.hybrid.solstice import SolsticeScheduler
    from repro.switch.params import ocs_params

    params = ocs_params(ocs, radix)
    demand = _sweep_demand(ocs, radix, seed, trial)
    plan = FaultPlan.uniform(rate, seed=seed + 7919 * rate_index + trial)
    h_result, cp_result = fault_trial(demand, SolsticeScheduler(), params, plan)
    return {
        "trial": trial,
        "rate": float(rate),
        "h": h_result.completion_time,
        "cp": cp_result.completion_time,
        "released": cp_result.released_composite,
    }


def outage_plan(rate: float, seed: int = 0) -> FaultPlan:
    """A plan injecting *only* composite-port outages at ``rate``.

    The fast-reroute experiments isolate the failure class the backup
    schedules repair; mixing in reconfiguration/circuit faults would move
    both arms of the comparison identically and only add variance.
    """
    return FaultPlan(seed=seed, o2m_outage_rate=rate, m2o_outage_rate=rate)


def reroute_trial(
    true_demand: np.ndarray,
    scheduler: HybridScheduler,
    params: SwitchParams,
    plan: FaultPlan,
    horizon: "float | None" = None,
) -> "tuple[SimulationResult, SimulationResult]":
    """One (degrade-to-EPS result, fast-reroute result) pair.

    The same cp-Switch schedule executes twice under independent
    realizations of ``plan`` (same seed → same outage draws, since both
    executions grant composite ports in the same order): once with the
    seed behaviour — a dead path's parked demand is released to the
    regular paths and drains on the EPS — and once with a precomputed
    :class:`~repro.faults.reroute.BackupSet` armed.  ``horizon`` defaults
    to the schedule's makespan, the window in which stranded volume is
    visible (run-to-completion drains everything and hides the recovery
    gap).  Conservation is checked for both results.
    """
    cp_scheduler = CpSwitchScheduler(scheduler)
    cp_schedule = cp_scheduler.schedule(true_demand, params)
    if horizon is None:
        horizon = cp_schedule.makespan
    backups = BackupPlanner(cp_scheduler).plan(true_demand, cp_schedule, params)
    degrade = simulate_cp(true_demand, cp_schedule, params, horizon=horizon, faults=plan)
    reroute = simulate_cp(
        true_demand, cp_schedule, params, horizon=horizon, faults=plan, backups=backups
    )
    degrade.check_conservation()
    reroute.check_conservation()
    return degrade, reroute


def reroute_rate_trial(
    *,
    ocs: str,
    radix: int,
    seed: int = 2016,
    trial: int = 0,
    rate: float = 0.0,
    rate_index: int = 0,
) -> dict:
    """One journaled fast-reroute-vs-degrade trial (JSON in, JSON out).

    Executes the cp-Switch schedule under an outage-only plan at ``rate``
    with and without fast-reroute; the plan seed matches the fault sweep's
    formula so journaled and sequential runs agree bit-for-bit.
    """
    from repro.hybrid.solstice import SolsticeScheduler
    from repro.switch.params import ocs_params

    params = ocs_params(ocs, radix)
    demand = _sweep_demand(ocs, radix, seed, trial)
    plan = outage_plan(rate, seed=seed + 7919 * rate_index + trial)
    degrade, reroute = reroute_trial(demand, SolsticeScheduler(), params, plan)
    outcome = reroute.reroute
    return {
        "trial": trial,
        "rate": float(rate),
        "degrade_stranded": degrade.stranded_volume,
        "reroute_stranded": reroute.stranded_volume,
        "swaps": outcome.n_swaps if outcome is not None else 0,
        "recovery_ms": outcome.recovery_ms if outcome is not None else 0.0,
        "reparked": outcome.reparked_mb if outcome is not None else 0.0,
    }


def deadline_trial(
    *,
    ocs: str,
    radix: int,
    seed: int = 2016,
    trial: int = 0,
    deadline_ms: float = 50.0,
    n_epochs: int = 3,
) -> dict:
    """One journaled deadline-aware controller trial (JSON in, JSON out).

    Runs the same ``n_epochs`` arrival trajectory through two epoch
    controllers — one with the anytime scheduler armed at ``deadline_ms``
    of wall-clock scheduling budget, one unbounded — and reports the miss
    rate, the fallback-level histogram, and the throughput/CCT deltas.

    Unlike the fault and error sweeps, the *numbers* here depend on real
    machine speed (that is the experiment: a wall-clock budget); the
    arrival trajectory itself is seed-deterministic, and every epoch is
    guaranteed a valid conservation-clean schedule regardless of how the
    budget lands.
    """
    from repro.analysis.controller import EpochController
    from repro.analysis.experiment import trial_rng
    from repro.hybrid.solstice import SolsticeScheduler
    from repro.switch.params import ocs_params
    from repro.workloads import SkewedWorkload

    if not deadline_ms > 0:
        raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    params = ocs_params(ocs, radix)
    workload = SkewedWorkload.for_params(params)
    rng = trial_rng(seed, trial)
    arrivals = [workload.generate(radix, rng).demand for _ in range(n_epochs)]

    # Epoch length = the unbounded cp-Switch completion of the first epoch's
    # demand: sustained load that a deadline-free controller just keeps up
    # with, so any throughput loss in the bounded arm is the deadline's.
    probe = CpSwitchScheduler(SolsticeScheduler()).schedule(arrivals[0], params)
    epoch_duration = max(simulate_cp(arrivals[0], probe, params).completion_time, 1e-6)

    def run_controller(deadline_s: "float | None"):
        controller = EpochController(
            params=params,
            scheduler=SolsticeScheduler(),
            use_composite_paths=True,
            epoch_duration=epoch_duration,
            deadline_s=deadline_s,
        )
        reports = []
        for epoch, matrix in enumerate(arrivals):
            controller.offer(matrix)
            report, _result = controller.run_epoch(epoch)
            reports.append(report)
        controller.check_conservation()
        return reports

    bounded = run_controller(deadline_ms / 1e3)
    unbounded = run_controller(None)
    fallbacks: "dict[str, int]" = {}
    for report in bounded:
        key = str(report.fallback_level)
        fallbacks[key] = fallbacks.get(key, 0) + 1

    def total_cct(reports) -> float:
        # A horizon-truncated epoch has nan completion (entries still
        # pending) — it spent the whole epoch serving, so charge the full
        # epoch length.
        return float(
            sum(
                r.completion_time if math.isfinite(r.completion_time) else epoch_duration
                for r in reports
            )
        )

    return {
        "trial": trial,
        "deadline_ms": float(deadline_ms),
        "miss_rate": sum(r.deadline_hit for r in bounded) / len(bounded),
        "fallbacks": fallbacks,
        "served": float(sum(r.served_volume for r in bounded)),
        "served_unbounded": float(sum(r.served_volume for r in unbounded)),
        "cct": total_cct(bounded),
        "cct_unbounded": total_cct(unbounded),
        "schedule_ms": float(np.mean([r.schedule_ms for r in bounded])),
    }


def fault_trial(
    true_demand: np.ndarray,
    scheduler: HybridScheduler,
    params: SwitchParams,
    plan: FaultPlan,
) -> "tuple[SimulationResult, SimulationResult]":
    """One (h result, cp result) pair under the same hardware fault plan.

    Both switches schedule from perfect knowledge, then execute under an
    independent realization of ``plan`` (each simulator builds its own
    injector from the plan's seed — the h-Switch draws only
    reconfiguration/circuit/EPS faults, the cp-Switch additionally risks
    composite-port outages).  Conservation holds for both results under
    any fault mix.
    """
    h_schedule = scheduler.schedule(true_demand, params)
    h_result = simulate_hybrid(true_demand, h_schedule, params, faults=plan)
    cp_schedule = CpSwitchScheduler(scheduler).schedule(true_demand, params)
    cp_result = simulate_cp(true_demand, cp_schedule, params, faults=plan)
    h_result.check_conservation()
    cp_result.check_conservation()
    return h_result, cp_result
