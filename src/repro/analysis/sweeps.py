"""Declarative sweep specs: every CLI sweep as journaled trial units.

This module is the bridge between the experiment layer and the
crash-tolerant runner (:mod:`repro.runner`): it decomposes each sweep the
CLI offers — ``compare``, ``figure``, ``robustness`` — into a flat list of
:class:`~repro.runner.isolation.TrialSpec` (one per ``(experiment, seed)``
key, all-JSON kwargs, quarantine demand hook attached) and aggregates the
journaled payloads back into the same objects the sequential code paths
produce (:class:`~repro.analysis.experiment.ComparisonAggregate`,
:class:`~repro.analysis.figures.FigurePoint`, degradation rows).

Because each trial spec pins its own demand stream
(:func:`repro.analysis.experiment.trial_rng`), execution order, subprocess
isolation, retries and resume cannot change the numbers: a sweep
interrupted at any trial and resumed aggregates bit-identically to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis.experiment import ComparisonAggregate, comparison_from_payloads
from repro.analysis.figures import FigurePoint
from repro.runner.isolation import TrialSpec

#: Figure name -> (workload, scheduler) per the paper's §3 pairing.
FIGURE_PAIRINGS: "dict[str, tuple[str, str]]" = {
    "fig5": ("skewed", "solstice"),
    "fig6": ("skewed", "eclipse"),
    "fig7": ("typical", "solstice"),
    "fig8": ("typical", "eclipse"),
    "fig9": ("intensive", "solstice"),
    "fig10": ("intensive", "eclipse"),
    "fig11": ("varying", "solstice"),
}

#: Figure 11's skew sweep (k skewed ports per direction).
FIG11_SKEW_COUNTS: "tuple[int, ...]" = (1, 2, 3, 4, 5, 6)

_COMPARISON_FN = "repro.analysis.experiment:comparison_trial"
_COMPARISON_DEMAND_FN = "repro.analysis.experiment:comparison_demand"
_ERROR_FN = "repro.analysis.robustness:error_trial"
_FAULT_FN = "repro.analysis.robustness:fault_rate_trial"
_REROUTE_FN = "repro.analysis.robustness:reroute_rate_trial"
_DEADLINE_FN = "repro.analysis.robustness:deadline_trial"
_ROBUSTNESS_DEMAND_FN = "repro.analysis.robustness:robustness_demand"


def sweep_fingerprint(kind: str, args: dict) -> str:
    """Short stable hash of a sweep's identity (kind + all arguments).

    Two invocations with identical arguments share a fingerprint — and
    therefore, via :func:`default_journal_path`, a journal — which is what
    makes re-running the same command resume instead of recompute.
    """
    canonical = json.dumps({"kind": kind, "args": args}, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def default_run_dir() -> Path:
    """Journal directory: ``$REPRO_RUN_DIR`` or ``./runs``."""
    return Path(os.environ.get("REPRO_RUN_DIR", "runs"))


def default_journal_path(kind: str, args: dict) -> Path:
    """Auto-derived journal path for a sweep (same args -> same journal)."""
    return default_run_dir() / f"{kind}-{sweep_fingerprint(kind, args)}.jsonl"


# ---------------------------------------------------------------------- #
# spec builders
# ---------------------------------------------------------------------- #


def compare_specs(
    *,
    workload: str,
    ocs: str,
    radix: int,
    scheduler: str = "solstice",
    trials: int = 3,
    seed: int = 2016,
    skewed_ports: int = 1,
    window: "float | None" = None,
) -> "list[TrialSpec]":
    """One spec per trial of an h-vs-cp comparison point."""
    experiment = f"compare-{workload}-{scheduler}-{ocs}-r{radix}"
    return [
        TrialSpec(
            experiment=experiment,
            key=f"{experiment}:{trial:04d}",
            fn=_COMPARISON_FN,
            kwargs={
                "workload": workload,
                "ocs": ocs,
                "radix": radix,
                "scheduler": scheduler,
                "seed": seed,
                "trial": trial,
                "skewed_ports": skewed_ports,
                "window": window,
            },
            demand_fn=_COMPARISON_DEMAND_FN,
        )
        for trial in range(trials)
    ]


def figure_specs(
    name: str,
    *,
    ocs: str,
    radices: "tuple[int, ...]",
    trials: int,
    seed: int = 2016,
    skew_counts: "tuple[int, ...]" = FIG11_SKEW_COUNTS,
) -> "list[TrialSpec]":
    """Specs of one of the paper's figure sweeps (trial granularity)."""
    if name not in FIGURE_PAIRINGS:
        raise ValueError(f"unknown figure {name!r}; expected one of {sorted(FIGURE_PAIRINGS)}")
    workload, scheduler = FIGURE_PAIRINGS[name]
    specs: "list[TrialSpec]" = []
    for radix in radices:
        counts = skew_counts if name == "fig11" else (1,)
        for k in counts:
            experiment = f"{name}-r{radix}" + (f"-k{k}" if name == "fig11" else "")
            for trial in range(trials):
                specs.append(
                    TrialSpec(
                        experiment=experiment,
                        key=f"{experiment}:{trial:04d}",
                        fn=_COMPARISON_FN,
                        kwargs={
                            "workload": workload,
                            "ocs": ocs,
                            "radix": radix,
                            "scheduler": scheduler,
                            "seed": seed,
                            "trial": trial,
                            "skewed_ports": k,
                            "window": None,
                        },
                        demand_fn=_COMPARISON_DEMAND_FN,
                    )
                )
    return specs


def robustness_specs(
    *,
    ocs: str,
    radix: int,
    trials: int,
    seed: int = 2016,
    fault_rates: "tuple[float, ...]" = (),
    error_rates: "tuple[float, ...]" = (),
    reroute: bool = False,
    deadlines: "tuple[float, ...]" = (),
) -> "list[TrialSpec]":
    """Specs of the robustness command's sweeps (fault + error, with
    ``reroute`` a fast-reroute-vs-degrade arm per fault rate, and with
    ``deadlines`` a deadline-aware anytime-controller arm per value in ms)."""
    specs: "list[TrialSpec]" = []
    for deadline_ms in deadlines:
        experiment = f"deadline-{ocs}-r{radix}@{deadline_ms:g}ms"
        for trial in range(trials):
            specs.append(
                TrialSpec(
                    experiment=experiment,
                    key=f"{experiment}:{trial:04d}",
                    fn=_DEADLINE_FN,
                    kwargs={
                        "ocs": ocs,
                        "radix": radix,
                        "seed": seed,
                        "trial": trial,
                        "deadline_ms": float(deadline_ms),
                    },
                    demand_fn=_ROBUSTNESS_DEMAND_FN,
                )
            )
    if reroute:
        for rate_index, rate in enumerate(fault_rates):
            experiment = f"reroute-{ocs}-r{radix}@{rate:g}"
            for trial in range(trials):
                specs.append(
                    TrialSpec(
                        experiment=experiment,
                        key=f"{experiment}:{trial:04d}",
                        fn=_REROUTE_FN,
                        kwargs={
                            "ocs": ocs,
                            "radix": radix,
                            "seed": seed,
                            "trial": trial,
                            "rate": float(rate),
                            "rate_index": rate_index,
                        },
                        demand_fn=_ROBUSTNESS_DEMAND_FN,
                    )
                )
    for rate_index, rate in enumerate(fault_rates):
        experiment = f"fault-{ocs}-r{radix}@{rate:g}"
        for trial in range(trials):
            specs.append(
                TrialSpec(
                    experiment=experiment,
                    key=f"{experiment}:{trial:04d}",
                    fn=_FAULT_FN,
                    kwargs={
                        "ocs": ocs,
                        "radix": radix,
                        "seed": seed,
                        "trial": trial,
                        "rate": float(rate),
                        "rate_index": rate_index,
                    },
                    demand_fn=_ROBUSTNESS_DEMAND_FN,
                )
            )
    for error in error_rates:
        experiment = f"error-{ocs}-r{radix}@{error:g}"
        for trial in range(trials):
            specs.append(
                TrialSpec(
                    experiment=experiment,
                    key=f"{experiment}:{trial:04d}",
                    fn=_ERROR_FN,
                    kwargs={
                        "ocs": ocs,
                        "radix": radix,
                        "seed": seed,
                        "trial": trial,
                        "error": float(error),
                    },
                    demand_fn=_ROBUSTNESS_DEMAND_FN,
                )
            )
    return specs


# ---------------------------------------------------------------------- #
# aggregation of journaled payloads
# ---------------------------------------------------------------------- #


def group_payloads(
    specs: "list[TrialSpec]", completed: "dict[str, dict]"
) -> "dict[str, list[dict]]":
    """Successful payloads grouped by experiment, in spec order.

    Experiments whose every trial failed map to an empty list, so callers
    can report the hole instead of silently dropping the point.
    """
    groups: "dict[str, list[dict]]" = {}
    for spec in specs:
        bucket = groups.setdefault(spec.experiment, [])
        if spec.key in completed:
            bucket.append(completed[spec.key])
    return groups


def comparison_points(
    specs: "list[TrialSpec]", completed: "dict[str, dict]"
) -> "list[tuple[str, FigurePoint | None]]":
    """(experiment, aggregated point) per experiment; ``None`` if all trials
    of that experiment failed."""
    points: "list[tuple[str, FigurePoint | None]]" = []
    for experiment, payloads in group_payloads(specs, completed).items():
        if not payloads:
            points.append((experiment, None))
            continue
        spec = next(s for s in specs if s.experiment == experiment)
        skewed = spec.kwargs.get("skewed_ports")
        result = comparison_from_payloads(payloads)
        points.append(
            (
                experiment,
                FigurePoint(
                    n_ports=result.n_ports,
                    result=result,
                    skewed_ports=skewed if "-k" in experiment else None,
                ),
            )
        )
    return points


def single_comparison(
    specs: "list[TrialSpec]", completed: "dict[str, dict]"
) -> ComparisonAggregate:
    """Aggregate a one-experiment sweep (the ``compare`` command)."""
    payloads = [completed[s.key] for s in specs if s.key in completed]
    return comparison_from_payloads(payloads)
