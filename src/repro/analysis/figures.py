"""Programmatic regeneration of the paper's figures and tables.

Each function reproduces one evaluation artifact of the paper (§3) and
returns structured data; the ``benchmarks/`` suite is a thin printing
layer over this module, and library users can call these directly, e.g.::

    from repro.analysis.figures import figure5
    for point in figure5("fast", radices=(32, 64), n_trials=10):
        print(point.n_ports, point.result.completion_improvement)

All functions take the OCS class name (``"fast"``/``"slow"``), the radix
sweep, the trial count, and a root seed; they fix the workload, the
sub-scheduler, and the metric per the paper's §3 pairing (Solstice for
completion-time figures, Eclipse for utilization figures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiment import (
    ComparisonAggregate,
    ExperimentConfig,
    default_trials,
    run_comparison,
)
from repro.analysis.robustness import fault_trial
from repro.analysis.runtime import RuntimeRow, runtime_row
from repro.faults.plan import FaultPlan
from repro.hybrid.solstice import SolsticeScheduler
from repro.switch.params import SwitchParams, ocs_params
from repro.utils.rng import spawn_rngs
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload
from repro.workloads.varying import VaryingSkewWorkload

#: Default radix sweep of the paper's evaluation.
PAPER_RADICES: "tuple[int, ...]" = (32, 64, 128)
#: Root seed used by the benchmark suite.
DEFAULT_SEED: int = 2016


def params_for(ocs: str, n_ports: int) -> SwitchParams:
    """Switch parameters for an OCS class name (``"fast"`` / ``"slow"``)."""
    return ocs_params(ocs, n_ports)


@dataclass(frozen=True)
class FigurePoint:
    """One x-axis point of a figure: a radix (and optionally a skew count)
    with its aggregated h-vs-cp comparison."""

    n_ports: int
    result: ComparisonAggregate
    skewed_ports: "int | None" = None


def _sweep(
    workload_factory,
    scheduler: str,
    ocs: str,
    radices: "tuple[int, ...]",
    n_trials: "int | None",
    seed: int,
) -> "list[FigurePoint]":
    points = []
    for n_ports in radices:
        params = params_for(ocs, n_ports)
        result = run_comparison(
            ExperimentConfig(
                workload=workload_factory(params),
                params=params,
                scheduler=scheduler,
                n_trials=n_trials,
                seed=seed,
            )
        )
        points.append(FigurePoint(n_ports=n_ports, result=result))
    return points


# ---------------------------------------------------------------------- #
# figures
# ---------------------------------------------------------------------- #


def figure5(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 5 — pure skewed demand, completion time (Solstice).

    Also carries the Figure 5(c) configuration counts inside each point's
    ``result``.
    """
    return _sweep(
        lambda p: SkewedWorkload.for_params(p), "solstice", ocs, radices, n_trials, seed
    )


def figure6(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 6 — pure skewed demand, OCS fraction in the window (Eclipse)."""
    return _sweep(
        lambda p: SkewedWorkload.for_params(p), "eclipse", ocs, radices, n_trials, seed
    )


def figure7(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 7 — typical DCN + skewed demand, completion time (Solstice)."""
    return _sweep(
        lambda p: CombinedWorkload.typical(p), "solstice", ocs, radices, n_trials, seed
    )


def figure8(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 8 — typical DCN + skewed demand, OCS fraction (Eclipse)."""
    return _sweep(
        lambda p: CombinedWorkload.typical(p), "eclipse", ocs, radices, n_trials, seed
    )


def figure9(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 9 — intensive (4×) DCN + skewed demand, completion time."""
    return _sweep(
        lambda p: CombinedWorkload.intensive(p), "solstice", ocs, radices, n_trials, seed
    )


def figure10(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 10 — intensive DCN + skewed demand, OCS fraction (Eclipse)."""
    return _sweep(
        lambda p: CombinedWorkload.intensive(p), "eclipse", ocs, radices, n_trials, seed
    )


def figure11(
    ocs: str,
    radices: "tuple[int, ...]" = PAPER_RADICES,
    skew_counts: "tuple[int, ...]" = (1, 2, 3, 4, 5, 6),
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[FigurePoint]":
    """Figure 11 — typical DCN + k skewed ports/direction (Solstice).

    One :class:`FigurePoint` per (radix, k), with ``skewed_ports`` set.
    """
    points = []
    for n_ports in radices:
        params = params_for(ocs, n_ports)
        for k in skew_counts:
            result = run_comparison(
                ExperimentConfig(
                    workload=VaryingSkewWorkload.for_params(params, n_skewed_ports=k),
                    params=params,
                    scheduler="solstice",
                    n_trials=n_trials,
                    seed=seed,
                )
            )
            points.append(FigurePoint(n_ports=n_ports, result=result, skewed_ports=k))
    return points


#: Default fault-rate sweep of the degradation curve.
DEFAULT_FAULT_RATES: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class DegradationPoint:
    """One fault rate of the degradation curve (trial means).

    ``h_completion``/``cp_completion`` are completion times (ms) under a
    uniform :meth:`~repro.faults.plan.FaultPlan.uniform` plan at
    ``fault_rate``; ``released_composite`` is the mean volume (Mb) the
    cp-Switch failed over from dead composite paths to regular paths.
    """

    fault_rate: float
    h_completion: float
    cp_completion: float
    released_composite: float
    n_ports: int

    @property
    def cp_advantage(self) -> float:
        """How much faster the cp-Switch finishes (h / cp; > 1 = cp wins)."""
        return self.h_completion / self.cp_completion if self.cp_completion else float("inf")


def degradation_curve(
    ocs: str,
    radix: int = 32,
    fault_rates: "tuple[float, ...]" = DEFAULT_FAULT_RATES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[DegradationPoint]":
    """h-Switch vs cp-Switch completion time versus hardware fault rate.

    The robustness counterpart of Figure 5: the paper's skewed workload and
    Solstice pairing, executed under a uniform fault plan whose severity
    sweeps ``fault_rates`` (reconfiguration failures/stragglers, circuit
    setup failures, composite-port outages and EPS degradation all at the
    same rate — see :meth:`repro.faults.plan.FaultPlan.uniform`).  At rate
    0 the curve reproduces the fault-free gap bit-identically; as the rate
    grows, dead composite ports push the cp-Switch back toward h-Switch
    behaviour (``released_composite`` rises) while both switches' absolute
    completion times climb.  Demand matrices are shared across the sweep,
    so movement along the x-axis is fault-driven, not workload-driven.
    """
    params = params_for(ocs, radix)
    workload = SkewedWorkload.for_params(params)
    scheduler = SolsticeScheduler()
    resolved_trials = n_trials if n_trials is not None else default_trials()
    demands = [
        workload.generate(radix, rng).demand
        for rng in spawn_rngs(seed, resolved_trials)
    ]
    points = []
    for rate_index, rate in enumerate(fault_rates):
        h_times, cp_times, released = [], [], []
        for trial, demand in enumerate(demands):
            # One fault realization per (rate, trial), reproducible from
            # the root seed.
            plan = FaultPlan.uniform(rate, seed=seed + 7919 * rate_index + trial)
            h_result, cp_result = fault_trial(demand, scheduler, params, plan)
            h_times.append(h_result.completion_time)
            cp_times.append(cp_result.completion_time)
            released.append(cp_result.released_composite)
        points.append(
            DegradationPoint(
                fault_rate=float(rate),
                h_completion=float(np.mean(h_times)),
                cp_completion=float(np.mean(cp_times)),
                released_composite=float(np.mean(released)),
                n_ports=radix,
            )
        )
    return points


@dataclass(frozen=True)
class ReroutePoint:
    """One outage rate of the fast-reroute comparison (trial means).

    ``degrade_stranded``/``reroute_stranded`` are the mean volumes (Mb)
    left undelivered at the schedule-makespan horizon without/with
    fast-reroute; ``swaps`` is the mean number of mid-run backup swaps and
    ``recovery_ms`` the mean worst-case detection-to-resumption latency of
    the trials that actually swapped.
    """

    fault_rate: float
    degrade_stranded: float
    reroute_stranded: float
    swaps: float
    recovery_ms: float
    n_ports: int

    @property
    def stranded_delta(self) -> float:
        """Stranded volume (Mb) fast-reroute recovered within the window."""
        return self.degrade_stranded - self.reroute_stranded


def reroute_curve(
    ocs: str,
    radix: int = 32,
    fault_rates: "tuple[float, ...]" = DEFAULT_FAULT_RATES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[ReroutePoint]":
    """Fast-reroute vs degrade-to-EPS stranded volume versus outage rate.

    The recovery counterpart of :func:`degradation_curve`: the same
    workload/scheduler pairing and the same per-(rate, trial) plan seed
    formula, but with an *outage-only* plan
    (:func:`repro.analysis.robustness.outage_plan`) so the two arms differ
    only in how a dead composite port is handled — released to the EPS
    (seed behaviour) or hot-swapped to the precomputed backup.  At rate 0
    the arms are bit-identical and both strand whatever the makespan
    horizon leaves; as the rate grows the degrade arm strands more while
    fast-reroute re-parks the orphaned demand onto surviving grants.
    """
    from repro.analysis.robustness import outage_plan, reroute_trial

    params = params_for(ocs, radix)
    workload = SkewedWorkload.for_params(params)
    scheduler = SolsticeScheduler()
    resolved_trials = n_trials if n_trials is not None else default_trials()
    demands = [
        workload.generate(radix, rng).demand
        for rng in spawn_rngs(seed, resolved_trials)
    ]
    points = []
    for rate_index, rate in enumerate(fault_rates):
        degrade_stranded, reroute_stranded, swaps, recoveries = [], [], [], []
        for trial, demand in enumerate(demands):
            plan = outage_plan(rate, seed=seed + 7919 * rate_index + trial)
            degrade, reroute = reroute_trial(demand, scheduler, params, plan)
            degrade_stranded.append(degrade.stranded_volume)
            reroute_stranded.append(reroute.stranded_volume)
            outcome = reroute.reroute
            swaps.append(outcome.n_swaps if outcome is not None else 0)
            if outcome is not None and outcome.n_swaps:
                recoveries.append(outcome.recovery_ms)
        points.append(
            ReroutePoint(
                fault_rate=float(rate),
                degrade_stranded=float(np.mean(degrade_stranded)),
                reroute_stranded=float(np.mean(reroute_stranded)),
                swaps=float(np.mean(swaps)),
                recovery_ms=float(np.mean(recoveries)) if recoveries else 0.0,
                n_ports=radix,
            )
        )
    return points


# ---------------------------------------------------------------------- #
# tables
# ---------------------------------------------------------------------- #


def runtime_table(
    scheduler: str,
    workload: str = "typical",
    radices: "tuple[int, ...]" = PAPER_RADICES,
    n_trials: "int | None" = None,
    seed: int = DEFAULT_SEED,
) -> "list[RuntimeRow]":
    """Tables 1–2 — h vs cp scheduler wall-times, (slow, fast) per radix.

    Parameters
    ----------
    scheduler:
        ``"solstice"`` (Table 1) or ``"eclipse"`` (Table 2).
    workload:
        ``"typical"`` (§3.3) or ``"intensive"`` (§3.4).
    """
    if workload == "typical":
        factory = CombinedWorkload.typical
    elif workload == "intensive":
        factory = CombinedWorkload.intensive
    else:
        raise ValueError(f"unknown workload {workload!r}; expected 'typical' or 'intensive'")
    rows = []
    for n_ports in radices:
        per_ocs = {}
        for ocs in ("slow", "fast"):
            params = params_for(ocs, n_ports)
            per_ocs[ocs] = run_comparison(
                ExperimentConfig(
                    workload=factory(params),
                    params=params,
                    scheduler=scheduler,
                    n_trials=n_trials,
                    seed=seed,
                )
            )
        rows.append(runtime_row(n_ports, per_ocs["slow"], per_ocs["fast"]))
    return rows
