"""Algorithm 2 — ``CPSched`` (§2.3): scheduling *within* a composite path.

When a permutation grants sender ``p`` a one-to-many composite path for
``t`` ms, its filtered demands ``S = Df[p, :]`` are served **to all active
destinations simultaneously** at the per-destination rate

    ``rate = min(Ce, Co / Rc)``

where ``Rc`` is the number of destinations still active: each destination's
EPS link caps at ``Ce`` (or the reserved budget ``Ce*``), and the shared
OCS leg caps the total at ``Co``.  As destinations drain, ``Rc`` shrinks and
the per-destination rate can rise (until the ``Ce`` cap binds).  The paper's
loop advances in closed form from one drain event to the next:

    ``tmax = max(Rm / Ce, Rm * Rc / Co)``

is exactly the time for the smallest active residual ``Rm`` to finish at
the current rate.  Many-to-one paths are the mirror image with sources in
place of destinations.

This module provides the verbatim algorithm (:func:`cpsched`) plus a
variant that also reports the service rate timeline
(:func:`cpsched_with_served`), which the fluid simulator uses to attribute
per-entry finish times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import VOLUME_TOL, check_nonnegative, check_positive


def cpsched(
    demands: np.ndarray,
    duration: float,
    ocs_rate: float,
    eps_rate: float,
) -> np.ndarray:
    """Algorithm 2: residual demands after ``duration`` on a composite path.

    Parameters
    ----------
    demands:
        ``S`` — 1-D array of per-endpoint demands (Mb) sharing this
        composite path.  Zero entries are inactive endpoints.
    duration:
        ``t`` — composite-path duration (ms).
    ocs_rate:
        ``Co`` — shared OCS-leg rate (Mb/ms).
    eps_rate:
        Per-endpoint EPS rate cap — ``Ce`` or the reserved budget ``Ce*``
        (Mb/ms).

    Returns
    -------
    ``R`` — residual demands (Mb), same shape as ``S``.
    """
    remaining, _events = _run(demands, duration, ocs_rate, eps_rate, record=False)
    return remaining


@dataclass(frozen=True)
class CompositeServiceSegment:
    """One constant-rate segment of a composite path's service timeline.

    Attributes
    ----------
    start, end:
        Segment boundaries in ms *relative to the composite path start*.
    rate:
        Per-active-endpoint service rate during the segment (Mb/ms).
    active:
        Indices of endpoints served during the segment.
    """

    start: float
    end: float
    rate: float
    active: np.ndarray


def cpsched_with_served(
    demands: np.ndarray,
    duration: float,
    ocs_rate: float,
    eps_rate: float,
) -> "tuple[np.ndarray, list[CompositeServiceSegment]]":
    """Algorithm 2 plus the piecewise-constant service timeline.

    Returns ``(residual, segments)`` where the segments partition
    ``[0, time actually used]`` and reconstruct exactly how much every
    endpoint received at every instant — the simulator uses this to compute
    per-entry completion times without re-deriving the rate policy.
    """
    return _run(demands, duration, ocs_rate, eps_rate, record=True)


def _run(
    demands: np.ndarray,
    duration: float,
    ocs_rate: float,
    eps_rate: float,
    *,
    record: bool,
) -> "tuple[np.ndarray, list[CompositeServiceSegment]]":
    remaining = np.asarray(demands, dtype=np.float64).copy()
    if remaining.ndim != 1:
        raise ValueError(f"demands must be a 1-D vector, got shape {remaining.shape}")
    if np.any(remaining < 0) or not np.all(np.isfinite(remaining)):
        raise ValueError("demands must be finite and non-negative")
    check_nonnegative("duration", duration)
    check_positive("ocs_rate", ocs_rate)
    check_positive("eps_rate", eps_rate)

    segments: list[CompositeServiceSegment] = []
    tau = float(duration)
    elapsed = 0.0
    while tau > 0:
        active = np.nonzero(remaining > VOLUME_TOL)[0]
        active_count = active.size
        if active_count == 0:
            break
        smallest = float(remaining[active].min())
        rate = min(eps_rate, ocs_rate / active_count)
        # Paper line 6: time until the smallest active residual drains.
        tmax = max(smallest / eps_rate, smallest * active_count / ocs_rate)
        tcurr = min(tmax, tau)
        remaining[active] = np.maximum(remaining[active] - tcurr * rate, 0.0)
        if record:
            segments.append(
                CompositeServiceSegment(
                    start=elapsed, end=elapsed + tcurr, rate=rate, active=active
                )
            )
        elapsed += tcurr
        tau -= tcurr
    return remaining, segments


def composite_path_rate(active_count: int, ocs_rate: float, eps_rate: float) -> float:
    """Per-endpoint rate of a composite path with ``active_count`` endpoints.

    The inherent cp-Switch tradeoff (§2.3): parallelism is capped per
    endpoint by the EPS link (``Ce``), while the shared optical leg caps the
    total (``Co``).
    """
    if active_count <= 0:
        return 0.0
    return min(eps_rate, ocs_rate / active_count)
