"""Algorithm 4 — ``CPSwitchSched`` (§2.3): the full cp-Switch scheduler.

The pipeline (Figure 4 of the paper):

1. **Reduce & filter** the n×n demand ``D`` into the (n+1)×(n+1) demand
   ``DI`` and the filtered composite demand ``Df`` (Algorithm 1).
2. **Delegate** ``DI`` to any h-Switch scheduler (Solstice or Eclipse here)
   — this is the reduction that lets cp-Switch ride on the existing body of
   hybrid-switch scheduling research.
3. **Interpret** each returned permutation with DivideByType (Algorithm 3):
   entries in the last row/column are composite-path grants.
4. **Schedule within** each granted composite path with CPSched
   (Algorithm 2) under the reserved EPS budget ``Ce*``, recording exactly
   how much of ``Df`` each configuration serves.

The result is a :class:`CpSchedule`: an ordered list of
:class:`CompositeScheduleEntry` — the cp-Switch analogue of a plain
:class:`~repro.hybrid.schedule.Schedule` — plus the reduction artifacts and
whatever filtered demand the composite paths could not finish (it falls
back to the EPS afterwards; the simulator handles that).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.config import FilterConfig
from repro.core.cpsched import cpsched
from repro.core.divide import divide_by_type
from repro.core.reduction import ReducedDemand, reduce_with_config
from repro.hybrid.base import HybridScheduler
from repro.hybrid.schedule import Schedule
from repro.switch.params import SwitchParams
from repro.utils.validation import check_demand_matrix, check_nonnegative, check_permutation


@dataclass(frozen=True)
class CompositeScheduleEntry:
    """One cp-Switch configuration.

    Attributes
    ----------
    regular:
        n×n partial permutation of regular OCS-OCS circuits.
    duration:
        Hold time (ms), reconfiguration penalty excluded.
    composite_served:
        n×n matrix of filtered-demand volume (Mb) the composite paths
        deliver during this configuration — the paper's
        ``Df,prev − Df`` term.
    o2m_port, m2o_port:
        Ports granted the one-to-many / many-to-one composite path
        (``None`` if not granted).
    """

    regular: np.ndarray
    duration: float
    composite_served: np.ndarray
    o2m_port: "int | None" = None
    m2o_port: "int | None" = None

    def __post_init__(self) -> None:
        perm = check_permutation(self.regular, partial=True)
        perm.setflags(write=False)
        object.__setattr__(self, "regular", perm)
        check_nonnegative("duration", self.duration)
        served = np.asarray(self.composite_served, dtype=np.float64)
        if served.shape != self.regular.shape:
            raise ValueError(
                f"composite_served shape {served.shape} != regular shape {self.regular.shape}"
            )
        served.setflags(write=False)
        object.__setattr__(self, "composite_served", served)

    @property
    def composite_volume(self) -> float:
        """Volume (Mb) the composite paths carry in this configuration."""
        return float(self.composite_served.sum())


@dataclass(frozen=True)
class CpSchedule:
    """Full cp-Switch schedule: interpreted configurations + provenance.

    Attributes
    ----------
    entries:
        Ordered cp-Switch configurations.
    reconfig_delay:
        OCS reconfiguration penalty δ (ms), charged before every entry.
    reduction:
        The Algorithm 1 output this schedule was derived from.
    filtered_residual:
        Part of ``Df`` the composite paths did not finish within the
        schedule (Mb); it is served by the EPS afterwards.
    reduced_schedule:
        The raw (n+1)-space schedule the h-Switch sub-scheduler produced
        (kept for diagnostics and the runtime tables).
    """

    entries: "tuple[CompositeScheduleEntry, ...]"
    reconfig_delay: float
    reduction: ReducedDemand
    filtered_residual: np.ndarray
    reduced_schedule: Schedule

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        check_nonnegative("reconfig_delay", self.reconfig_delay)
        # Freeze the residual, mirroring CompositeScheduleEntry: it is part
        # of the schedule's provenance and the simulator reads it later.
        residual = np.asarray(self.filtered_residual, dtype=np.float64)
        residual.setflags(write=False)
        object.__setattr__(self, "filtered_residual", residual)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def n_configs(self) -> int:
        """Number of OCS configurations."""
        return len(self.entries)

    @property
    def makespan(self) -> float:
        """Circuit time plus one δ per configuration (ms)."""
        return float(sum(e.duration for e in self.entries)) + self.n_configs * self.reconfig_delay

    @property
    def composite_volume_served(self) -> float:
        """Total volume (Mb) delivered over composite paths."""
        return float(sum(e.composite_volume for e in self.entries))

    def reordered(self, order: "list[int]") -> "CpSchedule":
        """Entries permuted by ``order`` — offline execution (§4)."""
        if sorted(order) != list(range(len(self.entries))):
            raise ValueError("order must be a permutation of entry indices")
        return CpSchedule(
            entries=tuple(self.entries[i] for i in order),
            reconfig_delay=self.reconfig_delay,
            reduction=self.reduction,
            filtered_residual=self.filtered_residual,
            reduced_schedule=self.reduced_schedule,
        )


@dataclass
class CpSwitchScheduler:
    """Algorithm 4: composite-path switch scheduler.

    Wraps any :class:`~repro.hybrid.base.HybridScheduler` — the paper's
    central claim is that this wrapper is all it takes to extend h-Switch
    scheduling to the cp-Switch.

    Parameters
    ----------
    inner:
        The h-Switch scheduling algorithm used as a sub-routine.
    filter_config:
        Resolution of the (Rt, Bt) thresholds; defaults to the paper's
        heuristic (β = 0.7, α by OCS class).
    """

    inner: HybridScheduler
    filter_config: FilterConfig = field(default_factory=FilterConfig)
    #: Optional :class:`~repro.service.deadline.DeadlineBudget` polled
    #: after the Algorithm-1 reduction and before each interpretation step
    #: (duck-typed to avoid an import cycle; the inner h-Switch scheduler
    #: carries its own ``budget`` hook).  A budget that never exhausts
    #: changes nothing — checkpoints only read the clock.
    budget: "object | None" = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        return f"cp-{self.inner.name}"

    def schedule(
        self,
        demand: np.ndarray,
        params: SwitchParams,
        *,
        blocked_o2m=None,
        blocked_m2o=None,
    ) -> CpSchedule:
        """Compute the full cp-Switch schedule for ``demand``.

        ``blocked_o2m`` / ``blocked_m2o`` exclude composite ports observed
        dead (see :func:`repro.core.reduction.cp_switch_demand_reduction`):
        their rows/columns stay on the regular paths, which is how the
        epoch controller degrades a faulted cp-Switch toward an h-Switch
        instead of parking demand on hardware that cannot serve it.
        """
        demand = check_demand_matrix(demand)
        n = demand.shape[0]
        if n != params.n_ports:
            raise ValueError(f"demand is {n}x{n} but params.n_ports={params.n_ports}")

        # Step 1: reduce and filter (Algorithm 1).
        with obs.profiled("cpsched.reduce", n=n):
            reduction = reduce_with_config(
                demand,
                params,
                self.filter_config,
                blocked_o2m=blocked_o2m,
                blocked_m2o=blocked_m2o,
            )
        if self.budget is not None:
            # Stage marker: exhaustion surfaces at the inner scheduler's
            # own checkpoints (or the interpretation loop below).
            self.budget.checkpoint("cpsched.reduce")

        # Step 2: h-Switch scheduling of the reduced demand.
        with obs.profiled("cpsched.inner", scheduler=self.inner.name):
            reduced_schedule = self.inner.schedule(reduction.reduced, params)

        # Steps 3-4: interpret each permutation; schedule within composite
        # paths under the reserved EPS budget Ce*.
        with obs.profiled("cpsched.interpret") as interpret_span:
            eps_budget = params.effective_eps_budget
            filtered = reduction.filtered.copy()
            entries: list[CompositeScheduleEntry] = []
            for item in reduced_schedule:
                if (
                    self.budget is not None
                    and not self.budget.checkpoint("cpsched.interpret")
                    and self.budget.overdrawn()
                ):
                    # Interpretation is O(n) per configuration — cheap
                    # enough to finish for the prefix the budget already
                    # paid for — so it only truncates on a hard overdraft.
                    # The parked demand the dropped configurations would
                    # have served merges back for the EPS drain.
                    break
                previous = filtered.copy()
                divided = divide_by_type(item.permutation)
                if divided.o2m_port is not None:
                    r = divided.o2m_port
                    filtered[r, :] = cpsched(
                        filtered[r, :], item.duration, params.ocs_rate, eps_budget
                    )
                if divided.m2o_port is not None:
                    c = divided.m2o_port
                    filtered[:, c] = cpsched(
                        filtered[:, c], item.duration, params.ocs_rate, eps_budget
                    )
                entries.append(
                    CompositeScheduleEntry(
                        regular=divided.regular,
                        duration=item.duration,
                        composite_served=previous - filtered,
                        o2m_port=divided.o2m_port,
                        m2o_port=divided.m2o_port,
                    )
                )
            interpret_span.set(configs=len(entries))

        if obs.active():
            # Schedule-quality audit: what Algorithm 4 decided, not how
            # fast — deterministic for a seeded run, so ``repro obs diff``
            # and the BENCH_obs gate treat any change as drift.
            o2m_grants = sum(1 for e in entries if e.o2m_port is not None)
            m2o_grants = sum(1 for e in entries if e.m2o_port is not None)
            composite_mb = float(sum(e.composite_served.sum() for e in entries))
            obs.get_tracer().event(
                "cpsched.audit",
                n=n,
                configs=len(entries),
                o2m_grants=o2m_grants,
                m2o_grants=m2o_grants,
                composite_mb=composite_mb,
                residual_mb=float(filtered.sum()),
            )
            metrics = obs.get_metrics()
            metrics.counter(
                "cpsched_schedules_total", "cp-Switch schedule() calls"
            ).inc()
            grants = metrics.counter(
                "cpsched_composite_grants_total",
                "composite-path grants in interpreted configurations (by kind)",
            )
            if o2m_grants:
                grants.labels(kind="o2m").inc(o2m_grants)
            if m2o_grants:
                grants.labels(kind="m2o").inc(m2o_grants)
            metrics.counter(
                "cpsched_composite_volume_mb_total",
                "volume (Mb) scheduled onto composite paths",
            ).inc(composite_mb)

        return CpSchedule(
            entries=tuple(entries),
            reconfig_delay=params.reconfig_delay,
            reduction=reduction,
            filtered_residual=filtered,
            reduced_schedule=reduced_schedule,
        )
