"""The paper's primary contribution: composite-path switch scheduling.

* :mod:`repro.core.config` — filtering-threshold configuration (Rt, Bt and
  the α/β tuning heuristic of §4).
* :mod:`repro.core.reduction` — Algorithm 1, ``cp-SwitchDemandReduction``.
* :mod:`repro.core.cpsched` — Algorithm 2, ``CPSched``.
* :mod:`repro.core.divide` — Algorithm 3, ``DivideByType``.
* :mod:`repro.core.scheduler` — Algorithm 4, ``CPSwitchSched``.
* :mod:`repro.core.multipath` — the §4 extension to k composite paths per
  direction.
"""

from repro.core.config import FilterConfig
from repro.core.cpsched import cpsched, cpsched_with_served
from repro.core.divide import DividedPermutation, divide_by_type
from repro.core.reduction import ReducedDemand, cp_switch_demand_reduction
from repro.core.scheduler import CompositeScheduleEntry, CpSchedule, CpSwitchScheduler

__all__ = [
    "CompositeScheduleEntry",
    "CpSchedule",
    "CpSwitchScheduler",
    "DividedPermutation",
    "FilterConfig",
    "ReducedDemand",
    "cp_switch_demand_reduction",
    "cpsched",
    "cpsched_with_served",
    "divide_by_type",
]
