"""Algorithm 3 — ``DivideByType`` (§2.3).

An h-Switch scheduler fed the reduced (n+1)×(n+1) demand returns
permutation matrices over n+1 "ports".  DivideByType decomposes each into:

* ``regular`` — the n×n sub-permutation of ordinary OCS circuits,
* the sender (if any) granted the **one-to-many** composite path — the row
  ``i`` with ``P[i, n] == 1``,
* the receiver (if any) granted the **many-to-one** composite path — the
  column ``j`` with ``P[n, j] == 1``.

Note on fidelity: the paper's listing returns the permutation *rows*
(``Srow = P[row, :]``) but Algorithm 4 then treats them as demand vectors
(``Df[r, :] = CPSched(Sr, ...)``).  The only consistent reading — and the
one matching the CPSched worked example (Figure 3) — is that CPSched
consumes ``Df`` rows/columns, so this function returns the composite *port
indices* and the caller fetches the demand vectors from ``Df``
(see DESIGN.md §1).

A corner case the reduction can produce: ``P[n, n] == 1`` (the two
composite "ports" matched to each other) carries no demand — ``DI[n, n]``
is always 0 — and is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_permutation


@dataclass(frozen=True)
class DividedPermutation:
    """Decomposition of one reduced-space permutation matrix.

    Attributes
    ----------
    regular:
        n×n partial permutation of regular OCS-OCS circuits.
    o2m_port:
        Sender index granted the one-to-many composite path, or ``None``.
    m2o_port:
        Receiver index granted the many-to-one composite path, or ``None``.
    """

    regular: np.ndarray
    o2m_port: "int | None"
    m2o_port: "int | None"

    @property
    def has_composite(self) -> bool:
        """Whether this configuration creates any composite path."""
        return self.o2m_port is not None or self.m2o_port is not None


def divide_by_type(permutation: np.ndarray) -> DividedPermutation:
    """Algorithm 3: split a reduced-space permutation into path types.

    Parameters
    ----------
    permutation:
        (n+1)×(n+1) 0/1 matrix with at most one 1 per row/column, as
        produced by an h-Switch scheduler on a reduced demand.

    Returns
    -------
    DividedPermutation
    """
    perm = check_permutation(permutation, partial=True)
    m = perm.shape[0]
    if m < 2:
        raise ValueError(f"reduced permutation must be at least 2x2, got {m}x{m}")
    n = m - 1

    regular = perm[:n, :n].copy()

    o2m_rows = np.nonzero(perm[:n, n])[0]
    o2m_port = int(o2m_rows[0]) if o2m_rows.size else None

    m2o_cols = np.nonzero(perm[n, :n])[0]
    m2o_port = int(m2o_cols[0]) if m2o_cols.size else None

    return DividedPermutation(regular=regular, o2m_port=o2m_port, m2o_port=m2o_port)
