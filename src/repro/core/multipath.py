"""§4 extension — k composite paths per direction.

The base cp-Switch has exactly one one-to-many and one many-to-one
composite path, which §3.5 shows saturates once several ports carry skewed
demand.  The paper sketches the fix: give the reduced demand ``k`` extra
columns and ``k`` extra rows (one per composite path), and extend the
filtering to balance entries across the k paths by always growing the
currently-minimal composite entry.  The h-Switch sub-scheduler then treats
the k path endpoints as ordinary ports, so several composite paths can be
active in the same permutation.

Layout of the reduced matrix (m = n + k):

* ``DI[i, n + p]`` — sender ``i``'s aggregate on one-to-many path ``p``;
* ``DI[n + p, j]`` — receiver ``j``'s aggregate on many-to-one path ``p``;
* ``DI[n:, n:]`` — always zero (composite endpoints never talk to each
  other).

Because an entry's service depends on *which* path it was assigned to, the
reduction also returns per-entry path-assignment maps, which the extended
scheduler uses to route CPSched over the right subset of ``Df``.
With ``k = 1`` every result coincides with the base Algorithm 1/4 output
(tested), so this module is a strict generalization.

Design note — port-sticky balancing.  The paper's sketch balances "the
minimal composite entry"; taken per *entry* that would shard one sender's
fan-out across several paths, which is counterproductive: a permutation can
still only match the sender to one path at a time, so sharding halves the
per-configuration aggregate (shorter Solstice slices) and drops the
composite rate below ``Co`` (fewer concurrently active endpoints per lane).
We therefore balance at the *port* level: the first composite entry of a
sender (receiver) picks the currently lightest one-to-many (many-to-one)
path and the port sticks to it, so each port's aggregate stays whole and
the k paths spread across *different* skewed ports — which is exactly the
§3.5 overload scenario the extension exists for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FilterConfig
from repro.core.cpsched import cpsched
from repro.hybrid.base import HybridScheduler
from repro.hybrid.schedule import Schedule
from repro.switch.params import SwitchParams
from repro.utils.validation import (
    VOLUME_TOL,
    check_demand_matrix,
    check_nonnegative,
    check_permutation,
)

#: Sentinel in the path-assignment maps for "not on a composite path".
NO_PATH: int = -1


@dataclass(frozen=True)
class MultiPathReducedDemand:
    """Output of the k-path demand reduction.

    Attributes
    ----------
    reduced:
        The (n+k)×(n+k) reduced demand ``DI``.
    filtered:
        ``Df`` — n×n matrix of entries assigned to composite paths.
    o2m_path, m2o_path:
        n×n int maps: the one-to-many / many-to-one path index serving each
        entry, or :data:`NO_PATH`.
    n_paths:
        k — number of composite paths per direction.
    volume_threshold, fanout_threshold:
        The resolved ``Bt`` and ``Rt``.
    """

    reduced: np.ndarray
    filtered: np.ndarray
    o2m_path: np.ndarray
    m2o_path: np.ndarray
    n_paths: int
    volume_threshold: float
    fanout_threshold: int

    def __post_init__(self) -> None:
        # Freeze the arrays, as the base ReducedDemand does: schedules keep
        # this reduction as provenance and the simulator routes lanes off
        # the path maps.
        for name in ("reduced", "filtered", "o2m_path", "m2o_path"):
            array = np.asarray(getattr(self, name))
            array.setflags(write=False)
            object.__setattr__(self, name, array)

    @property
    def n_ports(self) -> int:
        return self.filtered.shape[0]


def multi_path_reduction(
    demand: np.ndarray,
    n_paths: int,
    fanout_threshold: int,
    volume_threshold: float,
) -> MultiPathReducedDemand:
    """k-path generalization of Algorithm 1 (port-sticky balancing).

    A sender's first one-to-many entry picks the one-to-many path with the
    lowest total load (min-heap over paths) and the sender sticks to that
    path; receivers do the same over many-to-one paths.  Entries whose row
    *and* column qualify go to whichever side's per-port aggregate
    (``DI[i, n+p]`` vs ``DI[n+q, j]``) is currently smaller, exactly like
    the base algorithm's greedy.
    """
    demand = check_demand_matrix(demand)
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    if fanout_threshold < 1:
        raise ValueError(f"fanout_threshold (Rt) must be >= 1, got {fanout_threshold}")
    check_nonnegative("volume_threshold", volume_threshold)
    n = demand.shape[0]
    k = int(n_paths)
    m = n + k

    low = demand.copy()
    low[low > volume_threshold] = 0.0
    nonzero = low > VOLUME_TOL
    row_qualifies = nonzero.sum(axis=1) >= fanout_threshold
    col_qualifies = nonzero.sum(axis=0) >= fanout_threshold

    reduced = np.zeros((m, m), dtype=np.float64)
    filtered = np.zeros_like(demand)
    o2m_path = np.full((n, n), NO_PATH, dtype=np.int64)
    m2o_path = np.full((n, n), NO_PATH, dtype=np.int64)

    # Sticky port->path assignments plus a lazy min-heap of (total load,
    # path) per direction for the "lightest path" pick.
    path_of_sender = np.full(n, NO_PATH, dtype=np.int64)
    path_of_receiver = np.full(n, NO_PATH, dtype=np.int64)
    o2m_totals = np.zeros(k)
    m2o_totals = np.zeros(k)
    o2m_heap = [(0.0, p) for p in range(k)]
    m2o_heap = [(0.0, p) for p in range(k)]

    def _lightest(heap: "list[tuple[float, int]]", totals: np.ndarray) -> int:
        while True:
            load, path = heap[0]
            if load == totals[path]:
                return path
            heapq.heapreplace(heap, (float(totals[path]), path))

    def _sticky_path(port: int, assigned: np.ndarray, heap, totals) -> int:
        if assigned[port] == NO_PATH:
            assigned[port] = _lightest(heap, totals)
        return int(assigned[port])

    def _book(heap, totals, path: int, value: float) -> None:
        totals[path] += value
        if heap[0][1] == path:
            heapq.heapreplace(heap, (float(totals[path]), path))

    for i, j in zip(*np.nonzero(nonzero)):
        i, j = int(i), int(j)
        row_ok = bool(row_qualifies[i])
        col_ok = bool(col_qualifies[j])
        if not row_ok and not col_ok:
            continue
        value = float(demand[i, j])
        filtered[i, j] = value
        if row_ok and col_ok:
            # Greedy per-port aggregate comparison, as in the base
            # algorithm (peeking does not commit a port to a path).
            p = (
                int(path_of_sender[i])
                if path_of_sender[i] != NO_PATH
                else _lightest(o2m_heap, o2m_totals)
            )
            q = (
                int(path_of_receiver[j])
                if path_of_receiver[j] != NO_PATH
                else _lightest(m2o_heap, m2o_totals)
            )
            row_ok = reduced[i, n + p] <= reduced[n + q, j]
            col_ok = not row_ok
        if row_ok:
            path = _sticky_path(i, path_of_sender, o2m_heap, o2m_totals)
            reduced[i, n + path] += value
            _book(o2m_heap, o2m_totals, path, value)
            o2m_path[i, j] = path
        else:
            path = _sticky_path(j, path_of_receiver, m2o_heap, m2o_totals)
            reduced[n + path, j] += value
            _book(m2o_heap, m2o_totals, path, value)
            m2o_path[i, j] = path

    reduced[:n, :n] = demand - filtered
    return MultiPathReducedDemand(
        reduced=reduced,
        filtered=filtered,
        o2m_path=o2m_path,
        m2o_path=m2o_path,
        n_paths=k,
        volume_threshold=float(volume_threshold),
        fanout_threshold=int(fanout_threshold),
    )


@dataclass(frozen=True)
class MultiPathScheduleEntry:
    """One k-path cp-Switch configuration.

    ``o2m_grants`` maps composite-path index → granted sender;
    ``m2o_grants`` maps composite-path index → granted receiver.
    """

    regular: np.ndarray
    duration: float
    composite_served: np.ndarray
    o2m_grants: "dict[int, int]"
    m2o_grants: "dict[int, int]"

    @property
    def composite_volume(self) -> float:
        return float(self.composite_served.sum())


@dataclass(frozen=True)
class MultiPathCpSchedule:
    """Schedule produced by :class:`MultiPathCpScheduler`."""

    entries: "tuple[MultiPathScheduleEntry, ...]"
    reconfig_delay: float
    reduction: MultiPathReducedDemand
    filtered_residual: np.ndarray
    reduced_schedule: Schedule

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        # Freeze the residual, mirroring CpSchedule: the simulator reads it
        # after scheduling to drain leftovers on the EPS.
        residual = np.asarray(self.filtered_residual, dtype=np.float64)
        residual.setflags(write=False)
        object.__setattr__(self, "filtered_residual", residual)

    @property
    def n_configs(self) -> int:
        return len(self.entries)

    @property
    def makespan(self) -> float:
        return (
            float(sum(e.duration for e in self.entries))
            + self.n_configs * self.reconfig_delay
        )

    @property
    def composite_volume_served(self) -> float:
        return float(sum(e.composite_volume for e in self.entries))


def divide_by_type_multipath(
    permutation: np.ndarray, n_ports: int
) -> "tuple[np.ndarray, dict[int, int], dict[int, int]]":
    """k-path generalization of Algorithm 3.

    Returns ``(regular, o2m_grants, m2o_grants)`` where grants map path
    index → port.  Matches among composite endpoints (``P[n:, n:]``) carry
    no demand and are ignored.
    """
    perm = check_permutation(permutation, partial=True)
    m = perm.shape[0]
    n = int(n_ports)
    if m <= n:
        raise ValueError(f"permutation of size {m} cannot host {n} ports + paths")
    regular = perm[:n, :n].copy()
    o2m_grants: dict[int, int] = {}
    m2o_grants: dict[int, int] = {}
    for p in range(m - n):
        senders = np.nonzero(perm[:n, n + p])[0]
        if senders.size:
            o2m_grants[p] = int(senders[0])
        receivers = np.nonzero(perm[n + p, :n])[0]
        if receivers.size:
            m2o_grants[p] = int(receivers[0])
    return regular, o2m_grants, m2o_grants


@dataclass
class MultiPathCpScheduler:
    """Algorithm 4 generalized to k composite paths per direction.

    Parameters
    ----------
    inner:
        h-Switch scheduler used as a sub-routine.
    n_paths:
        k — composite paths per direction.
    filter_config:
        (Rt, Bt) resolution, as in the base scheduler.
    """

    inner: HybridScheduler
    n_paths: int = 1
    filter_config: FilterConfig = field(default_factory=FilterConfig)

    @property
    def name(self) -> str:
        return f"cp{self.n_paths}-{self.inner.name}"

    def schedule(self, demand: np.ndarray, params: SwitchParams) -> MultiPathCpSchedule:
        demand = check_demand_matrix(demand)
        n = demand.shape[0]
        if n != params.n_ports:
            raise ValueError(f"demand is {n}x{n} but params.n_ports={params.n_ports}")
        reduction = multi_path_reduction(
            demand,
            self.n_paths,
            fanout_threshold=self.filter_config.resolve_fanout_threshold(params),
            volume_threshold=self.filter_config.resolve_volume_threshold(params),
        )
        reduced_schedule = self.inner.schedule(reduction.reduced, params)

        eps_budget = params.effective_eps_budget
        filtered = reduction.filtered.copy()
        entries: list[MultiPathScheduleEntry] = []
        for item in reduced_schedule:
            previous = filtered.copy()
            regular, o2m_grants, m2o_grants = divide_by_type_multipath(
                item.permutation, n
            )
            for path, sender in o2m_grants.items():
                lane = filtered[sender, :] * (reduction.o2m_path[sender, :] == path)
                remaining = cpsched(lane, item.duration, params.ocs_rate, eps_budget)
                served = lane - remaining
                filtered[sender, :] -= served
            for path, receiver in m2o_grants.items():
                lane = filtered[:, receiver] * (reduction.m2o_path[:, receiver] == path)
                remaining = cpsched(lane, item.duration, params.ocs_rate, eps_budget)
                served = lane - remaining
                filtered[:, receiver] -= served
            entries.append(
                MultiPathScheduleEntry(
                    regular=regular,
                    duration=item.duration,
                    composite_served=previous - filtered,
                    o2m_grants=o2m_grants,
                    m2o_grants=m2o_grants,
                )
            )
        return MultiPathCpSchedule(
            entries=tuple(entries),
            reconfig_delay=params.reconfig_delay,
            reduction=reduction,
            filtered_residual=filtered,
            reduced_schedule=reduced_schedule,
        )
