"""Demand-filtering configuration for the cp-Switch (§2.2, §4).

Two thresholds drive Algorithm 1:

* ``Bt`` (volume threshold, Mb) — entries **larger** than ``Bt`` are never
  sent over a composite path: a big entry is cheaper to serve with its own
  circuit than to time-share the composite path's per-endpoint EPS rate
  (intuition (b), §2.2).  The paper's heuristic ties it to the
  reconfiguration cost: ``Bt = α · (δ · Co)`` with α = 1 for the fast OCS
  (→ 2 Mb) and α = 0.1 for the slow OCS (→ 200 Mb).
* ``Rt`` (fan-out threshold, count) — only rows/columns with at least
  ``Rt`` surviving entries qualify: a row with 1–2 entries gains nothing
  from aggregation (intuition (a)).  The paper sets ``Rt = β · n`` with
  β = 0.7.

:class:`FilterConfig` captures (α, β) and resolves them against concrete
switch parameters; explicit ``Bt``/``Rt`` overrides are supported for the
tuning ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.switch.params import SwitchParams
from repro.utils.validation import check_positive

#: Paper default: ``Bt = α · δ · Co`` with α = 1 for the fast OCS.
DEFAULT_ALPHA_FAST: float = 1.0
#: Paper default: α = 0.1 for the slow OCS.
DEFAULT_ALPHA_SLOW: float = 0.1
#: Paper default: ``Rt = β · n`` with β = 0.7.
DEFAULT_BETA: float = 0.7
#: Reconfiguration delays at or below this (ms) use the fast-OCS α default.
_FAST_DELTA_CUTOFF: float = 1.0


@dataclass(frozen=True)
class FilterConfig:
    """Resolves the (Rt, Bt) filtering thresholds of Algorithm 1.

    Attributes
    ----------
    alpha:
        Proportionality factor for ``Bt = alpha * delta * Co``.  ``None``
        selects the paper's OCS-class default (1.0 fast / 0.1 slow).
    beta:
        Fan-out fraction for ``Rt = ceil(beta * n)``, 0 < beta <= 1.
    volume_threshold:
        Explicit ``Bt`` override (Mb); bypasses ``alpha``.
    fanout_threshold:
        Explicit ``Rt`` override (count); bypasses ``beta``.
    """

    alpha: "float | None" = None
    beta: float = DEFAULT_BETA
    volume_threshold: "float | None" = None
    fanout_threshold: "int | None" = None

    def __post_init__(self) -> None:
        if self.alpha is not None:
            check_positive("alpha", self.alpha)
        if not (0.0 < self.beta <= 1.0):
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")
        if self.volume_threshold is not None:
            check_positive("volume_threshold", self.volume_threshold)
        if self.fanout_threshold is not None and self.fanout_threshold < 1:
            raise ValueError(f"fanout_threshold must be >= 1, got {self.fanout_threshold}")

    def resolve_volume_threshold(self, params: SwitchParams) -> float:
        """``Bt`` in Mb for this switch (§4 'Tuning Heuristic')."""
        if self.volume_threshold is not None:
            return self.volume_threshold
        alpha = self.alpha
        if alpha is None:
            alpha = (
                DEFAULT_ALPHA_FAST
                if params.reconfig_delay <= _FAST_DELTA_CUTOFF
                else DEFAULT_ALPHA_SLOW
            )
        return alpha * params.reconfig_delay * params.ocs_rate

    def resolve_fanout_threshold(self, params: SwitchParams) -> int:
        """``Rt`` as an entry count for this switch."""
        if self.fanout_threshold is not None:
            return int(self.fanout_threshold)
        return max(1, math.ceil(self.beta * params.n_ports))
