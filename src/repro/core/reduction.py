"""Algorithm 1 — ``cp-SwitchDemandReduction`` (§2.2).

Reduces the n×n demand matrix ``D`` into an (n+1)×(n+1) matrix ``DI`` that
any h-Switch scheduler can consume.  Column ``n`` (0-based) of ``DI``
represents the **one-to-many** composite path: ``DI[i, n]`` is the aggregate
volume sender ``i`` would push through OCS → composite link → EPS.  Row
``n`` represents the **many-to-one** composite path symmetrically.

Filtering (paper intuition, §2.2):

* entries larger than ``Bt`` are kept out of composite paths — a large
  entry amortizes its own circuit's reconfiguration cost;
* only rows/columns with at least ``Rt`` surviving non-zero entries qualify
  — aggregation pays off only for genuine one-to-many / many-to-one
  fan-out;
* an entry whose row *and* column both qualify is assigned greedily to the
  currently lighter composite path (load balancing), scanning entries in
  row-major order (the paper says "arbitrary order"; row-major keeps runs
  deterministic).

The function returns both ``DI`` and the *filtered* matrix ``Df`` holding
exactly the entries assigned to composite paths, so that
``DI[:n, :n] == D - Df`` and total volume is conserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FilterConfig
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix, check_nonnegative

@dataclass(frozen=True)
class ReducedDemand:
    """Output of Algorithm 1.

    Attributes
    ----------
    reduced:
        ``DI`` — the (n+1)×(n+1) reduced demand.  ``reduced[:n, :n]`` is the
        demand left on regular EPS-EPS / OCS-OCS paths; ``reduced[:n, n]``
        aggregates per-sender one-to-many composite demand; ``reduced[n, :n]``
        aggregates per-receiver many-to-one composite demand.
    filtered:
        ``Df`` — the n×n matrix of entries assigned to composite paths.
    o2m_assignment:
        Boolean n×n mask: entry assigned to its sender's one-to-many path.
    m2o_assignment:
        Boolean n×n mask: entry assigned to its receiver's many-to-one path.
    volume_threshold, fanout_threshold:
        The resolved ``Bt`` (Mb) and ``Rt`` (count) actually applied.
    """

    reduced: np.ndarray
    filtered: np.ndarray
    o2m_assignment: np.ndarray
    m2o_assignment: np.ndarray
    volume_threshold: float
    fanout_threshold: int

    def __post_init__(self) -> None:
        # Freeze the arrays: schedules keep references to this reduction as
        # provenance, and `o2m_loads`/`m2o_loads` are live views into
        # `reduced` — a caller mutating any of them would silently corrupt
        # every schedule derived from it.
        for name in ("reduced", "filtered", "o2m_assignment", "m2o_assignment"):
            array = np.asarray(getattr(self, name))
            array.setflags(write=False)
            object.__setattr__(self, name, array)

    @property
    def n_ports(self) -> int:
        return self.filtered.shape[0]

    @property
    def composite_volume(self) -> float:
        """Total volume routed via composite paths (Mb)."""
        return float(self.filtered.sum())

    @property
    def o2m_loads(self) -> np.ndarray:
        """Per-sender one-to-many composite aggregate, ``DI[:n, n]``."""
        return self.reduced[: self.n_ports, self.n_ports]

    @property
    def m2o_loads(self) -> np.ndarray:
        """Per-receiver many-to-one composite aggregate, ``DI[n, :n]``."""
        return self.reduced[self.n_ports, : self.n_ports]


def _blocked_mask(n: int, blocked, name: str) -> "np.ndarray | None":
    """Normalize a blocked-port spec (iterable of ports or bool mask)."""
    if blocked is None:
        return None
    blocked = np.asarray(
        sorted(blocked) if isinstance(blocked, (set, frozenset)) else blocked
    )
    if blocked.dtype == bool:
        if blocked.shape != (n,):
            raise ValueError(f"{name} mask has shape {blocked.shape}, expected ({n},)")
        return blocked
    mask = np.zeros(n, dtype=bool)
    ports = blocked.astype(np.int64, casting="unsafe").ravel()
    if ports.size and (ports.min() < 0 or ports.max() >= n):
        raise ValueError(f"{name} ports must be in [0, {n}), got {ports.tolist()}")
    mask[ports] = True
    return mask


def cp_switch_demand_reduction(
    demand: np.ndarray,
    fanout_threshold: int,
    volume_threshold: float,
    *,
    blocked_o2m=None,
    blocked_m2o=None,
) -> ReducedDemand:
    """Algorithm 1: build the reduced demand ``DI`` and filtered demand ``Df``.

    Parameters
    ----------
    demand:
        n×n demand matrix ``D`` (Mb).
    fanout_threshold:
        ``Rt`` — minimum number of small entries a row/column needs to
        qualify for a composite path.
    volume_threshold:
        ``Bt`` — entries strictly larger than this never ride a composite
        path.
    blocked_o2m, blocked_m2o:
        Optional ports whose one-to-many / many-to-one composite path must
        not be used — an iterable of port indices or a boolean n-mask.
        The epoch controller passes the composite ports it has observed
        dead, so the next scheduling round keeps their rows/columns on the
        regular paths instead of parking demand on hardware that cannot
        serve it.

    Returns
    -------
    ReducedDemand
        With volume conserved: ``DI.sum() == D.sum()`` and
        ``DI[:n, :n] == D - Df``.
    """
    demand = check_demand_matrix(demand)
    if fanout_threshold < 1:
        raise ValueError(f"fanout_threshold (Rt) must be >= 1, got {fanout_threshold}")
    check_nonnegative("volume_threshold", volume_threshold)
    n = demand.shape[0]

    # Line 3: Dlow = ZerosAboveBt(D) — drop entries too big for composites.
    low = demand.copy()
    low[low > volume_threshold] = 0.0

    # Lines 4-5: qualifying rows/columns by surviving-entry count.
    nonzero = low > VOLUME_TOL
    row_qualifies = nonzero.sum(axis=1) >= fanout_threshold
    col_qualifies = nonzero.sum(axis=0) >= fanout_threshold

    # Fault masking: a row/column whose composite port is known dead can
    # never qualify — its entries stay on the regular paths.
    row_blocked = _blocked_mask(n, blocked_o2m, "blocked_o2m")
    if row_blocked is not None:
        row_qualifies &= ~row_blocked
    col_blocked = _blocked_mask(n, blocked_m2o, "blocked_m2o")
    if col_blocked is not None:
        col_qualifies &= ~col_blocked

    reduced = np.zeros((n + 1, n + 1), dtype=np.float64)
    filtered = np.zeros_like(demand)
    o2m_mask = np.zeros((n, n), dtype=bool)
    m2o_mask = np.zeros((n, n), dtype=bool)
    o2m_loads = reduced[:n, n]  # views: updates write through to `reduced`
    m2o_loads = reduced[n, :n]

    # Lines 6-8: row qualifies, column does not -> one-to-many path of i.
    only_rows = nonzero & row_qualifies[:, None] & ~col_qualifies[None, :]
    filtered[only_rows] = demand[only_rows]
    np.add.at(o2m_loads, np.nonzero(only_rows)[0], demand[only_rows])
    o2m_mask |= only_rows

    # Lines 9-11: column qualifies, row does not -> many-to-one path of j.
    only_cols = nonzero & ~row_qualifies[:, None] & col_qualifies[None, :]
    filtered[only_cols] = demand[only_cols]
    np.add.at(m2o_loads, np.nonzero(only_cols)[1], demand[only_cols])
    m2o_mask |= only_cols

    # Lines 12-15: both qualify -> greedily balance onto the lighter path.
    # The greedy choice at each entry depends on the loads accumulated by
    # every earlier entry, so the scan stays sequential — but it runs over
    # plain Python floats (an order of magnitude cheaper than numpy scalar
    # indexing) and batches the matrix/mask writes.  The per-entry
    # arithmetic (one comparison, one addition) is unchanged, so the
    # resulting loads and assignment are bit-identical.
    both_rows, both_cols = np.nonzero(
        nonzero & row_qualifies[:, None] & col_qualifies[None, :]
    )
    if both_rows.size:
        values = demand[both_rows, both_cols]
        filtered[both_rows, both_cols] = values
        o2m = o2m_loads.tolist()
        m2o = m2o_loads.tolist()
        goes_o2m = [False] * both_rows.size
        for k, (i, j, value) in enumerate(
            zip(both_rows.tolist(), both_cols.tolist(), values.tolist())
        ):
            if o2m[i] <= m2o[j]:
                o2m[i] = o2m[i] + value
                goes_o2m[k] = True
            else:
                m2o[j] = m2o[j] + value
        goes_o2m = np.asarray(goes_o2m, dtype=bool)
        o2m_loads[:] = o2m
        m2o_loads[:] = m2o
        o2m_mask[both_rows[goes_o2m], both_cols[goes_o2m]] = True
        m2o_mask[both_rows[~goes_o2m], both_cols[~goes_o2m]] = True

    # Line 16: remaining demand stays on regular paths.
    reduced[:n, :n] = demand - filtered

    return ReducedDemand(
        reduced=reduced,
        filtered=filtered,
        o2m_assignment=o2m_mask,
        m2o_assignment=m2o_mask,
        volume_threshold=float(volume_threshold),
        fanout_threshold=int(fanout_threshold),
    )


def reduce_with_config(
    demand: np.ndarray,
    params: SwitchParams,
    config: "FilterConfig | None" = None,
    *,
    blocked_o2m=None,
    blocked_m2o=None,
) -> ReducedDemand:
    """Algorithm 1 with thresholds resolved from a :class:`FilterConfig`."""
    config = config or FilterConfig()
    return cp_switch_demand_reduction(
        demand,
        fanout_threshold=config.resolve_fanout_threshold(params),
        volume_threshold=config.resolve_volume_threshold(params),
        blocked_o2m=blocked_o2m,
        blocked_m2o=blocked_m2o,
    )
