"""§4 extension — offline execution (permutation reordering).

The schedulers emit permutations in a greedy order and §3 executes them in
that order ("online execution").  §4 observes that reordering cannot change
the total completion time or the windowed OCS utilization (the set of
configurations is unchanged), but it *can* move specific coflows earlier:
in particular, pulling composite-path configurations to the front of a
cp-Switch schedule serves the delay-sensitive one-to-many / many-to-one
coflows first, while for the h-Switch the same traffic stays gated by its
many reconfigurations regardless of order.

This module provides named reordering policies for both schedule types;
:func:`reorder` applies one by name.  The
``benchmarks/bench_ablation_offline.py`` study quantifies the effect.
"""

from __future__ import annotations

from typing import Callable

from repro.core.scheduler import CpSchedule
from repro.hybrid.schedule import Schedule

#: Signature of a reordering policy: schedule -> execution order (indices).
Policy = Callable[["Schedule | CpSchedule"], "list[int]"]


def online_order(schedule) -> "list[int]":
    """The scheduler's own emission order (§3's 'online execution')."""
    return list(range(len(schedule.entries)))


def reversed_order(schedule) -> "list[int]":
    """Reverse emission order — Solstice's shortest slices first."""
    return list(range(len(schedule.entries)))[::-1]


def longest_first(schedule) -> "list[int]":
    """Longest configurations first (big-flow traffic first)."""
    return sorted(
        range(len(schedule.entries)),
        key=lambda i: -schedule.entries[i].duration,
    )


def shortest_first(schedule) -> "list[int]":
    """Shortest configurations first (small residuals first)."""
    return sorted(
        range(len(schedule.entries)),
        key=lambda i: schedule.entries[i].duration,
    )


def composite_first(schedule: CpSchedule) -> "list[int]":
    """Composite-path configurations first, longest first within each class.

    Only meaningful for cp-Switch schedules: serves the skewed coflows as
    early as possible.
    """
    def key(index: int):
        entry = schedule.entries[index]
        has_composite = getattr(entry, "o2m_port", None) is not None or (
            getattr(entry, "m2o_port", None) is not None
        )
        return (not has_composite, -entry.duration)

    return sorted(range(len(schedule.entries)), key=key)


POLICIES: "dict[str, Policy]" = {
    "online": online_order,
    "reversed": reversed_order,
    "longest-first": longest_first,
    "shortest-first": shortest_first,
    "composite-first": composite_first,
}


def reorder(schedule, policy: str):
    """Return ``schedule`` reordered by the named policy.

    Works on both :class:`~repro.hybrid.schedule.Schedule` and
    :class:`~repro.core.scheduler.CpSchedule` (``composite-first`` is a
    no-op permutation on plain schedules, whose entries carry no composite
    grants).
    """
    try:
        order = POLICIES[policy](schedule)
    except KeyError:
        raise ValueError(
            f"unknown reordering policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
    return schedule.reordered(order)
