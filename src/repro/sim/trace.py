"""Textual execution traces — ASCII Gantt charts of schedules and results.

Debugging a scheduler usually starts with "what did the OCS actually do,
and when" — this module renders that: one lane per mechanism (regular
circuits, composite paths, reconfigurations), time left-to-right, scaled
to a fixed character width.  It operates on the same objects the rest of
the library exchanges (:class:`~repro.hybrid.schedule.Schedule`,
:class:`~repro.core.scheduler.CpSchedule`,
:class:`~repro.sim.metrics.SimulationResult`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import CpSchedule
from repro.hybrid.schedule import Schedule
from repro.sim.metrics import SimulationResult

#: Characters used for the Gantt lanes.
_RECONFIG_CHAR = "."
_CIRCUIT_CHAR = "#"
_COMPOSITE_CHAR = "Z"
_IDLE_CHAR = " "


@dataclass(frozen=True)
class TimelineInterval:
    """One labelled interval on a schedule timeline."""

    start: float
    end: float
    label: str
    kind: str  # "reconfig" | "circuit" | "composite"

    @property
    def duration(self) -> float:
        return self.end - self.start


def schedule_timeline(schedule: "Schedule | CpSchedule") -> "list[TimelineInterval]":
    """Flatten a schedule into labelled (start, end) intervals.

    Every configuration contributes a reconfiguration interval followed by
    a hold interval; cp-Switch configurations with composite grants are
    tagged ``composite``.
    """
    intervals: list[TimelineInterval] = []
    clock = 0.0
    delta = schedule.reconfig_delay
    for index, entry in enumerate(schedule.entries):
        intervals.append(
            TimelineInterval(clock, clock + delta, f"reconfig {index}", "reconfig")
        )
        clock += delta
        kind = "circuit"
        label = f"config {index}"
        o2m = getattr(entry, "o2m_port", None)
        m2o = getattr(entry, "m2o_port", None)
        if o2m is not None or m2o is not None:
            kind = "composite"
            grants = []
            if o2m is not None:
                grants.append(f"o2m@{o2m}")
            if m2o is not None:
                grants.append(f"m2o@{m2o}")
            label = f"config {index} ({', '.join(grants)})"
        intervals.append(TimelineInterval(clock, clock + entry.duration, label, kind))
        clock += entry.duration
    return intervals


def render_gantt(
    schedule: "Schedule | CpSchedule",
    width: int = 72,
    total_time: "float | None" = None,
) -> str:
    """ASCII Gantt chart of a schedule.

    Lanes: ``OCS`` (``#`` circuit hold, ``.`` reconfiguring) and — for
    cp-Switch schedules — ``composite`` (``Z`` while any composite path is
    granted).  ``total_time`` extends the x-axis beyond the makespan (e.g.
    to a simulation's completion time).
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    intervals = schedule_timeline(schedule)
    if not intervals:
        return "(empty schedule)"
    horizon = intervals[-1].end if total_time is None else max(total_time, intervals[-1].end)
    if horizon <= 0:
        return "(zero-length schedule)"

    def lane(selector) -> str:
        cells = [_IDLE_CHAR] * width
        for interval in intervals:
            char = selector(interval)
            if char is None:
                continue
            lo = int(interval.start / horizon * width)
            hi = max(lo + 1, int(interval.end / horizon * width))
            for k in range(lo, min(hi, width)):
                cells[k] = char
        return "".join(cells)

    ocs_lane = lane(
        lambda iv: _RECONFIG_CHAR
        if iv.kind == "reconfig"
        else (_CIRCUIT_CHAR if iv.kind in ("circuit", "composite") else None)
    )
    lines = [
        f"0 {'-' * (width - 2)} {horizon:.3g} ms",
        f"OCS        |{ocs_lane}|",
    ]
    if any(iv.kind == "composite" for iv in intervals):
        composite_lane = lane(
            lambda iv: _COMPOSITE_CHAR if iv.kind == "composite" else None
        )
        lines.append(f"composite  |{composite_lane}|")
    legend = f"legend: {_CIRCUIT_CHAR}=circuits held, {_RECONFIG_CHAR}=reconfiguring"
    if any(iv.kind == "composite" for iv in intervals):
        legend += f", {_COMPOSITE_CHAR}=composite path granted"
    lines.append(legend)
    return "\n".join(lines)


def render_service_profile(result: SimulationResult, width: int = 72) -> str:
    """ASCII profile of aggregate service rates over a simulation.

    One lane per mechanism (OCS circuits, composite paths, EPS), with
    per-column intensity from the rate integral over that column's time
    span: `` .:*#`` from idle to the lane's peak.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not result.segments:
        return "(no service recorded)"
    horizon = max(segment.end for segment in result.segments)
    if horizon <= 0:
        return "(no service recorded)"
    ramp = " .:*#"

    def lane(rate_of) -> str:
        volumes = [0.0] * width
        for segment in result.segments:
            lo = int(segment.start / horizon * width)
            hi = max(lo + 1, int(segment.end / horizon * width))
            for k in range(lo, min(hi, width)):
                cell_start = horizon * k / width
                cell_end = horizon * (k + 1) / width
                overlap = min(segment.end, cell_end) - max(segment.start, cell_start)
                if overlap > 0:
                    volumes[k] += overlap * rate_of(segment)
        peak = max(volumes)
        if peak <= 0:
            return _IDLE_CHAR * width
        cells = [
            ramp[min(len(ramp) - 1, int(v / peak * (len(ramp) - 1) + 0.9999)) if v > 0 else 0]
            for v in volumes
        ]
        return "".join(cells)

    lines = [
        f"0 {'-' * (width - 2)} {horizon:.3g} ms",
        f"OCS direct |{lane(lambda s: s.ocs_direct_rate)}|",
        f"composite  |{lane(lambda s: s.composite_rate)}|",
        f"EPS        |{lane(lambda s: s.eps_rate)}|",
        "legend: ' '=idle, '.'/':'/'*'/'#' rising share of the lane's peak",
    ]
    return "\n".join(lines)
