"""Fluid, event-driven simulation of h-Switch and cp-Switch executions.

The paper's evaluation executes each schedule "online" (permutations in the
order the scheduler emitted them) on a fluid model of the switch: circuits
drain their VOQ at ``Co``, the EPS serves residual demand under per-port
capacity ``Ce``, and — for the cp-Switch — composite paths serve the
filtered demand at the CPSched rates with ``Ce*`` reserved on the EPS links
they traverse.  This package implements that model exactly, with per-entry
completion times and a piecewise-constant service-rate timeline for
windowed utilization metrics.
"""

from repro.sim.cp_sim import simulate_cp, simulate_multipath
from repro.sim.hybrid_sim import simulate_hybrid
from repro.sim.metrics import RateSegment, SimulationResult
from repro.sim.rates import max_min_fair_rates

__all__ = [
    "RateSegment",
    "SimulationResult",
    "max_min_fair_rates",
    "simulate_cp",
    "simulate_hybrid",
    "simulate_multipath",
]
