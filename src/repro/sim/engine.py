"""The fluid event-driven execution engine.

Time advances from one *rate-change event* to the next.  Within a phase
(fixed OCS configuration, or a reconfiguration gap, or the final EPS-only
drain) the set of service rates is constant until some entry drains, so the
engine repeatedly:

1. computes every mechanism's current rates —
   * regular OCS circuits serve their matched entry at ``Co``;
   * each active composite path serves its remaining filtered entries at
     the CPSched rate ``min(Ce*, Co / active_count)`` per endpoint,
     reserving that rate on the EPS links it traverses (§2.3,
     "EPS Reservation");
   * the EPS serves all other residual regular demand with max-min fair
     rates under the remaining per-port capacities;
2. advances to the earliest of (entry drains, phase ends);
3. books served volume per mechanism and records finish times.

Every event drains at least one entry or ends the phase, so the engine
performs O(non-zero entries + phases) rate computations per simulation.

Demand placement: an entry's residual lives in exactly one of two matrices —
``regular`` (served by circuits + EPS) or ``composite`` (served only by
composite paths while the schedule runs).  ``merge_composite_into_regular``
moves unfinished composite residual back to the EPS for the final drain,
matching the paper's model where filtered traffic not completed by the
composite paths is ordinary packet traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.metrics import RateSegment, SimulationResult
from repro.sim.rates import max_min_fair_rate_matrix
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: Durations shorter than this (ms) are treated as elapsed.
TIME_TOL: float = 1e-12


@dataclass(frozen=True)
class CompositeService:
    """An active composite path inside one phase.

    Attributes
    ----------
    kind:
        ``"o2m"`` (one-to-many: ``port`` is the sender) or ``"m2o"``
        (many-to-one: ``port`` is the receiver).
    port:
        The granted port index.
    lane_mask:
        Optional boolean vector restricting which filtered entries of the
        row/column this path serves (used by the k-path extension);
        ``None`` serves the whole row/column, as Algorithm 4 does.
    """

    kind: str
    port: int
    lane_mask: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.kind not in ("o2m", "m2o"):
            raise ValueError(f"kind must be 'o2m' or 'm2o', got {self.kind!r}")
        if self.port < 0:
            raise ValueError(f"port must be non-negative, got {self.port}")


class FluidEngine:
    """Stateful fluid executor for one demand matrix on one switch."""

    def __init__(self, demand: np.ndarray, params: SwitchParams) -> None:
        demand = check_demand_matrix(demand)
        if demand.shape[0] != params.n_ports:
            raise ValueError(
                f"demand is {demand.shape[0]}x{demand.shape[1]} but "
                f"params.n_ports={params.n_ports}"
            )
        self.params = params
        self.n = params.n_ports
        self.regular = demand.copy()
        self.composite = np.zeros_like(demand)
        self.demanded = demand > VOLUME_TOL
        self.finish_times = np.full(demand.shape, np.nan)
        self.clock = 0.0
        self.segments: list[RateSegment] = []
        self.served_ocs_direct = 0.0
        self.served_composite = 0.0
        self.served_eps = 0.0
        self.total_demand = float(demand.sum())

    # ------------------------------------------------------------------ #
    # demand placement
    # ------------------------------------------------------------------ #

    def assign_composite(self, filtered: np.ndarray) -> None:
        """Move the filtered demand ``Df`` onto the composite residual.

        Must be called before any phase runs; mirrors Algorithm 1's split
        ``DI[:n, :n] = D − Df``.
        """
        filtered = np.asarray(filtered, dtype=np.float64)
        if filtered.shape != self.regular.shape:
            raise ValueError(f"filtered shape {filtered.shape} != demand shape")
        if np.any(filtered > self.regular + 1e-9):
            raise ValueError("filtered demand exceeds remaining regular demand")
        if self.clock > 0:
            raise RuntimeError("assign_composite must run before the first phase")
        self.regular = np.maximum(self.regular - filtered, 0.0)
        self.composite = self.composite + filtered

    def merge_composite_into_regular(self) -> None:
        """Return unfinished composite residual to the EPS (final drain)."""
        self.regular += self.composite
        self.composite[:] = 0.0

    # ------------------------------------------------------------------ #
    # phase execution
    # ------------------------------------------------------------------ #

    def run_phase(
        self,
        duration: "float | None",
        circuits: "np.ndarray | None" = None,
        composites: "tuple[CompositeService, ...] | list[CompositeService]" = (),
        eps_enabled: bool = True,
    ) -> None:
        """Advance the simulation through one constant-configuration phase.

        Parameters
        ----------
        duration:
            Phase length (ms); ``None`` runs until all residual demand is
            drained (the final EPS-only drain).
        circuits:
            n×n 0/1 partial permutation of regular OCS circuits active in
            this phase, or ``None`` (e.g. during reconfiguration).
        composites:
            Active composite paths.
        eps_enabled:
            Whether the EPS serves regular demand (always true in the
            paper's model; disabling it isolates mechanisms in tests).
        """
        open_ended = duration is None
        remaining = np.inf if open_ended else float(duration)
        if not open_ended and remaining < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        circuit_rows: np.ndarray
        circuit_cols: np.ndarray
        if circuits is not None:
            circuit_rows, circuit_cols = np.nonzero(circuits)
        else:
            circuit_rows = circuit_cols = np.empty(0, dtype=np.int64)

        while remaining > TIME_TOL:
            reg_rate, comp_rate, breakdown = self._current_rates(
                circuit_rows, circuit_cols, composites, eps_enabled
            )
            dt_event = self._next_drain(reg_rate, comp_rate)
            if not np.isfinite(dt_event) and open_ended:
                break  # nothing left to serve
            dt = min(dt_event, remaining)
            if dt <= TIME_TOL:
                # Nothing is being served and the phase is finite: idle out.
                self.clock += remaining
                break
            self._apply(reg_rate, comp_rate, breakdown, dt)
            remaining -= dt

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _current_rates(
        self,
        circuit_rows: np.ndarray,
        circuit_cols: np.ndarray,
        composites,
        eps_enabled: bool,
    ) -> "tuple[np.ndarray, np.ndarray, tuple[float, float, float]]":
        """Rates for the current residuals.

        Returns ``(regular_rates, composite_rates, (circuit_total,
        composite_total, eps_total))``.
        """
        params = self.params
        n = self.n
        reg_rate = np.zeros_like(self.regular)
        comp_rate = np.zeros_like(self.regular)
        in_cap = np.full(n, params.eps_rate)
        out_cap = np.full(n, params.eps_rate)

        # Regular OCS circuits.
        circuit_total = 0.0
        if circuit_rows.size:
            live = self.regular[circuit_rows, circuit_cols] > VOLUME_TOL
            rows, cols = circuit_rows[live], circuit_cols[live]
            reg_rate[rows, cols] = params.ocs_rate
            circuit_total = params.ocs_rate * rows.size

        # Composite paths: CPSched rates + EPS reservation.
        budget = params.effective_eps_budget
        composite_total = 0.0
        for service in composites:
            if service.kind == "o2m":
                vector = self.composite[service.port, :]
            else:
                vector = self.composite[:, service.port]
            active = vector > VOLUME_TOL
            if service.lane_mask is not None:
                active = active & service.lane_mask
            count = int(active.sum())
            if count == 0:
                continue
            rate = min(budget, params.ocs_rate / count)
            if service.kind == "o2m":
                comp_rate[service.port, active] += rate
                out_cap[active] -= rate  # reservation on destination EPS links
            else:
                comp_rate[active, service.port] += rate
                in_cap[active] -= rate  # reservation on source EPS links
            composite_total += rate * count
        np.clip(in_cap, 0.0, None, out=in_cap)
        np.clip(out_cap, 0.0, None, out=out_cap)

        # EPS: everything regular that no circuit is serving right now.
        eps_total = 0.0
        if eps_enabled:
            eps_active = (self.regular > VOLUME_TOL) & (reg_rate <= 0)
            if eps_active.any():
                eps_rates = max_min_fair_rate_matrix(eps_active, in_cap, out_cap)
                reg_rate += eps_rates
                eps_total = float(eps_rates.sum())
        return reg_rate, comp_rate, (circuit_total, composite_total, eps_total)

    def _next_drain(self, reg_rate: np.ndarray, comp_rate: np.ndarray) -> float:
        """Time until the earliest served entry drains (inf if none)."""
        dt = np.inf
        served = reg_rate > 0
        if served.any():
            dt = min(dt, float((self.regular[served] / reg_rate[served]).min()))
        served = comp_rate > 0
        if served.any():
            dt = min(dt, float((self.composite[served] / comp_rate[served]).min()))
        return dt

    def _apply(
        self,
        reg_rate: np.ndarray,
        comp_rate: np.ndarray,
        breakdown: "tuple[float, float, float]",
        dt: float,
    ) -> None:
        """Advance time by ``dt`` at the given rates; book volumes/finishes."""
        circuit_total, composite_total, eps_total = breakdown
        before = self.regular + self.composite

        self.regular -= reg_rate * dt
        self.composite -= comp_rate * dt
        np.clip(self.regular, 0.0, None, out=self.regular)
        np.clip(self.composite, 0.0, None, out=self.composite)
        # Snap float dust to exact zero so drained entries stay drained.
        self.regular[self.regular <= VOLUME_TOL] = 0.0
        self.composite[self.composite <= VOLUME_TOL] = 0.0

        after = self.regular + self.composite
        newly_done = self.demanded & (before > VOLUME_TOL) & (after <= VOLUME_TOL)
        self.finish_times[newly_done] = self.clock + dt

        # dt never exceeds residual/rate for any served entry, so rate*dt is
        # the exact served volume per mechanism (up to the snap tolerance).
        self.served_ocs_direct += circuit_total * dt
        self.served_composite += composite_total * dt
        self.served_eps += eps_total * dt

        self.segments.append(
            RateSegment(
                start=self.clock,
                end=self.clock + dt,
                ocs_direct_rate=circuit_total,
                composite_rate=composite_total,
                eps_rate=eps_total,
            )
        )
        self.clock += dt

    # ------------------------------------------------------------------ #
    # result
    # ------------------------------------------------------------------ #

    def residual_total(self) -> float:
        """Total undelivered volume (Mb)."""
        return float(self.regular.sum() + self.composite.sum())

    def result(
        self, n_configs: int, makespan: float, *, allow_residual: bool = False
    ) -> SimulationResult:
        """Freeze the engine state into a :class:`SimulationResult`.

        With ``allow_residual`` (horizon-bounded executions) the leftover
        demand is reported instead of rejected; pending entries keep their
        ``nan`` finish times and the completion time becomes ``nan``.
        """
        leftover = self.residual_total()
        if leftover > VOLUME_TOL * max(1, self.n) ** 2 and not allow_residual:
            raise RuntimeError(
                f"simulation ended with {leftover} Mb undelivered; "
                "run a final drain phase first"
            )
        finished = self.finish_times[self.demanded]
        if finished.size == 0:
            completion = 0.0
        elif np.isnan(finished).any():
            completion = float("nan")  # something is still pending
        else:
            completion = float(finished.max())
        result = SimulationResult(
            finish_times=self.finish_times,
            completion_time=completion,
            n_configs=n_configs,
            makespan=makespan,
            segments=self.segments,
            served_ocs_direct=self.served_ocs_direct,
            served_composite=self.served_composite,
            served_eps=self.served_eps,
            total_demand=self.total_demand,
            residual=(self.regular + self.composite) if allow_residual else None,
        )
        result.check_conservation(tol=1e-6)
        return result
