"""The fluid event-driven execution engine.

Time advances from one *rate-change event* to the next.  Within a phase
(fixed OCS configuration, or a reconfiguration gap, or the final EPS-only
drain) the set of service rates is constant until some entry drains, so the
engine repeatedly:

1. computes every mechanism's current rates —
   * regular OCS circuits serve their matched entry at ``Co``;
   * each active composite path serves its remaining filtered entries at
     the CPSched rate ``min(Ce*, Co / active_count)`` per endpoint,
     reserving that rate on the EPS links it traverses (§2.3,
     "EPS Reservation");
   * the EPS serves all other residual regular demand with max-min fair
     rates under the remaining per-port capacities;
2. advances to the earliest of (entry drains, phase ends);
3. books served volume per mechanism and records finish times.

Every event drains at least one entry or ends the phase, so the engine
performs O(non-zero entries + phases) rate computations per simulation.

Hot-path layout: all per-event state lives in flat 1-D arrays over the
*support* — the entries that can ever carry volume (``demand > VOLUME_TOL``,
refreshed when :meth:`FluidEngine.assign_composite` or
:meth:`FluidEngine.merge_composite_into_regular` move volume around).  The
full ``regular`` / ``composite`` matrices are gathered into the flat arrays
once at the start of each phase and scattered back once at the end, so an
event costs O(nnz + n) instead of the O(n²) the seed implementation paid
for rebuilding full rate matrices (see :mod:`repro.sim.reference` for that
frozen baseline).  The support's flat indices are stored row-major sorted,
which makes each row a contiguous slice (one-to-many composite paths) and
keeps the EPS flow ordering identical to a full-matrix ``np.nonzero`` —
the flat engine's event sequence, drains and finish times are bit-identical
to the reference engine's.

Demand placement: an entry's residual lives in exactly one of two matrices —
``regular`` (served by circuits + EPS) or ``composite`` (served only by
composite paths while the schedule runs).  ``merge_composite_into_regular``
moves unfinished composite residual back to the EPS for the final drain,
matching the paper's model where filtered traffic not completed by the
composite paths is ordinary packet traffic.  Entries at or below
``VOLUME_TOL`` are dust: they are never served and never counted as
demanded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.sim.metrics import RateSegment, SimulationResult
from repro.sim.rates import max_min_fair_rates
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: Durations shorter than this (ms) are treated as elapsed.
TIME_TOL: float = 1e-12

_EMPTY_POS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class CompositeService:
    """An active composite path inside one phase.

    Attributes
    ----------
    kind:
        ``"o2m"`` (one-to-many: ``port`` is the sender) or ``"m2o"``
        (many-to-one: ``port`` is the receiver).
    port:
        The granted port index.
    lane_mask:
        Optional boolean vector restricting which filtered entries of the
        row/column this path serves (used by the k-path extension);
        ``None`` serves the whole row/column, as Algorithm 4 does.
    """

    kind: str
    port: int
    lane_mask: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.kind not in ("o2m", "m2o"):
            raise ValueError(f"kind must be 'o2m' or 'm2o', got {self.kind!r}")
        if self.port < 0:
            raise ValueError(f"port must be non-negative, got {self.port}")


class FluidEngine:
    """Stateful fluid executor for one demand matrix on one switch."""

    def __init__(self, demand: np.ndarray, params: SwitchParams) -> None:
        demand = check_demand_matrix(demand)
        if demand.shape[0] != params.n_ports:
            raise ValueError(
                f"demand is {demand.shape[0]}x{demand.shape[1]} but "
                f"params.n_ports={params.n_ports}"
            )
        self.params = params
        self.n = params.n_ports
        self.regular = demand.copy()
        self.composite = np.zeros_like(demand)
        self.demanded = demand > VOLUME_TOL
        self.finish_times = np.full(demand.shape, np.nan)
        self.clock = 0.0
        self.segments: list[RateSegment] = []
        self.served_ocs_direct = 0.0
        self.served_composite = 0.0
        self.served_eps = 0.0
        self.total_demand = float(demand.sum())
        self.released_composite = 0.0
        self._dust_snaps = 0
        self._rebuild_support()

    # ------------------------------------------------------------------ #
    # support bookkeeping
    # ------------------------------------------------------------------ #

    def _rebuild_support(self) -> None:
        """Re-derive the flat index bookkeeping from the current matrices.

        Called whenever volume moves between matrices outside a phase
        (construction, ``assign_composite``, ``merge_composite_into_regular``)
        so the per-phase flat arrays always cover every entry that can
        still carry volume.
        """
        support = (self.regular > VOLUME_TOL) | (self.composite > VOLUME_TOL)
        rows, cols = np.nonzero(support)
        n = self.n
        self._rows = rows
        self._cols = cols
        self._nnz = rows.size
        # Row-major nonzero order makes the flat keys strictly increasing,
        # each row a contiguous slice, and the EPS flow order identical to
        # a full-matrix np.nonzero scan.
        self._flat = rows * np.int64(n) + cols
        self._row_start = np.searchsorted(rows, np.arange(n + 1))
        self._col_order = np.argsort(cols, kind="stable")
        self._col_start = np.searchsorted(cols[self._col_order], np.arange(n + 1))
        self._flat_demanded = self.demanded[rows, cols]
        # Preallocated per-event buffers.
        self._reg_rate = np.zeros(self._nnz)
        self._comp_rate = np.zeros(self._nnz)
        self._before = np.empty(self._nnz)
        self._after = np.empty(self._nnz)
        self._scratch = np.empty(self._nnz)
        self._in_cap = np.empty(n)
        self._out_cap = np.empty(n)

    def _positions_of(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Flat support positions of the (row, col) pairs that are in it."""
        if rows.size == 0 or self._nnz == 0:
            return _EMPTY_POS
        keys = rows.astype(np.int64) * np.int64(self.n) + cols
        pos = np.searchsorted(self._flat, keys)
        pos = np.minimum(pos, self._nnz - 1)
        return pos[self._flat[pos] == keys]

    # ------------------------------------------------------------------ #
    # demand placement
    # ------------------------------------------------------------------ #

    def assign_composite(self, filtered: np.ndarray) -> None:
        """Move the filtered demand ``Df`` onto the composite residual.

        Must be called before any phase runs; mirrors Algorithm 1's split
        ``DI[:n, :n] = D − Df``.
        """
        filtered = np.asarray(filtered, dtype=np.float64)
        if filtered.shape != self.regular.shape:
            raise ValueError(f"filtered shape {filtered.shape} != demand shape")
        if np.any(filtered > self.regular + 1e-9):
            raise ValueError("filtered demand exceeds remaining regular demand")
        if self.clock > 0:
            raise RuntimeError("assign_composite must run before the first phase")
        self.regular = np.maximum(self.regular - filtered, 0.0)
        self.composite = self.composite + filtered
        self._rebuild_support()

    def merge_composite_into_regular(
        self, mask: "np.ndarray | None" = None
    ) -> float:
        """Return unfinished composite residual to the EPS (final drain).

        With ``mask`` (n×n bool) only the masked entries move — the
        fast-reroute swap un-parks exactly the composite residual no
        surviving grant of the remaining schedule covers, so the EPS can
        drain it instead of it sitting parked until the horizon.  Returns
        the volume (Mb) moved.
        """
        if mask is None:
            moved = float(self.composite.sum())
            self.regular += self.composite
            self.composite[:] = 0.0
        else:
            if mask.shape != self.composite.shape:
                raise ValueError(f"mask shape {mask.shape} != demand shape")
            take = np.where(mask, self.composite, 0.0)
            moved = float(take.sum())
            if moved <= 0.0:
                return 0.0
            self.regular += take
            np.maximum(self.composite - take, 0.0, out=self.composite)
        self._rebuild_support()
        return moved

    def release_composite(
        self, kind: str, port: int, lane_mask: "np.ndarray | None" = None
    ) -> float:
        """Fail a composite path over: park its demand on the regular paths.

        When the one-to-many path of sender ``port`` (``kind="o2m"``) or
        the many-to-one path of receiver ``port`` (``kind="m2o"``) suffers
        a hardware outage, the filtered demand waiting on it can never be
        served by that path again.  This moves the affected composite
        residual back onto ``regular``, where circuits and the EPS serve it
        like any other demand — the graceful cp-Switch → h-Switch
        degradation: completion time rises, volume is never lost.

        Must be called between phases (like :meth:`assign_composite`);
        returns the released volume (Mb).  ``lane_mask`` restricts the
        release to one k-path lane's entries.
        """
        if kind not in ("o2m", "m2o"):
            raise ValueError(f"kind must be 'o2m' or 'm2o', got {kind!r}")
        if not 0 <= port < self.n:
            raise ValueError(f"port must be in [0, {self.n}), got {port}")
        residual = self.composite[port, :] if kind == "o2m" else self.composite[:, port]
        mask = residual > 0.0
        if lane_mask is not None:
            mask &= np.asarray(lane_mask, dtype=bool)
        released = float(residual[mask].sum())
        if released <= 0.0:
            return 0.0
        regular = self.regular[port, :] if kind == "o2m" else self.regular[:, port]
        regular[mask] += residual[mask]
        residual[mask] = 0.0
        self.released_composite += released
        self._rebuild_support()
        if obs.active():
            obs.get_tracer().event(
                "engine.composite_release", kind=kind, port=port, released_mb=released
            )
            metrics = obs.get_metrics()
            metrics.counter(
                "engine_composite_releases_total",
                "composite paths failed over to the regular paths",
            ).labels(kind=kind).inc()
            metrics.counter(
                "engine_composite_released_mb_total",
                "volume (Mb) re-routed off dead composite paths",
            ).inc(released)
        return released

    def repark_composite(self, filtered: np.ndarray) -> float:
        """Mid-run repair: move regular residual back onto composite paths.

        The fast-reroute swap (:mod:`repro.faults.reroute`): after a dead
        path's demand was released (or everything was merged), the backup's
        parkable demand returns to the composite residual so surviving
        composite grants serve it at the CPSched rates instead of leaving
        it to the EPS.  Unlike :meth:`assign_composite` this is legal at
        any phase boundary; at most ``min(filtered, regular)`` moves (an
        entry partially served since planning parks only what is left).
        Returns the volume (Mb) actually re-parked.
        """
        filtered = np.asarray(filtered, dtype=np.float64)
        if filtered.shape != self.regular.shape:
            raise ValueError(f"filtered shape {filtered.shape} != demand shape")
        if np.any(filtered < 0.0):
            raise ValueError("filtered demand must be non-negative")
        take = np.minimum(filtered, self.regular)
        take[take <= VOLUME_TOL] = 0.0
        parked = float(take.sum())
        if parked <= 0.0:
            return 0.0
        self.regular = np.maximum(self.regular - take, 0.0)
        self.composite = self.composite + take
        self._rebuild_support()
        if obs.active():
            obs.get_tracer().event("engine.composite_repark", reparked_mb=parked)
            obs.get_metrics().counter(
                "engine_composite_reparked_mb_total",
                "volume (Mb) re-parked onto composite paths by fast-reroute",
            ).inc(parked)
        return parked

    # ------------------------------------------------------------------ #
    # phase execution
    # ------------------------------------------------------------------ #

    def run_phase(
        self,
        duration: "float | None",
        circuits: "np.ndarray | None" = None,
        composites: "tuple[CompositeService, ...] | list[CompositeService]" = (),
        eps_enabled: bool = True,
        eps_port_scale: "np.ndarray | None" = None,
    ) -> None:
        """Advance the simulation through one constant-configuration phase.

        Parameters
        ----------
        duration:
            Phase length (ms); ``None`` runs until all residual demand is
            drained (the final EPS-only drain).
        circuits:
            n×n 0/1 partial permutation of regular OCS circuits active in
            this phase, or ``None`` (e.g. during reconfiguration).
        composites:
            Active composite paths.
        eps_enabled:
            Whether the EPS serves regular demand (always true in the
            paper's model; disabling it isolates mechanisms in tests).
        eps_port_scale:
            Optional per-port capacity factors in [0, 1] (fault injection:
            degraded EPS line rates).  Scales each port's EPS capacity in
            both directions and caps each composite path's per-entry rate
            at its EPS-leg link capacity; ``None`` (the default and the
            fault-free path) keeps every port at ``Ce``.
        """
        open_ended = duration is None
        remaining = np.inf if open_ended else float(duration)
        if not open_ended and remaining < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if eps_port_scale is None:
            base_cap = None
        else:
            scale = np.asarray(eps_port_scale, dtype=np.float64)
            if scale.shape != (self.n,):
                raise ValueError(
                    f"eps_port_scale has shape {scale.shape}, expected ({self.n},)"
                )
            if np.any(scale < 0.0) or np.any(scale > 1.0):
                raise ValueError("eps_port_scale factors must be in [0, 1]")
            base_cap = self.params.eps_rate * scale

        # ---- phase-constant bookkeeping --------------------------------
        if circuits is not None:
            circuit_pos = self._positions_of(*np.nonzero(circuits))
        else:
            circuit_pos = _EMPTY_POS
        services = []
        for service in composites:
            port = service.port
            if service.kind == "o2m":
                lo, hi = self._row_start[port], self._row_start[port + 1]
                positions = np.arange(lo, hi, dtype=np.int64)
                partners = self._cols[lo:hi]
            else:
                lo, hi = self._col_start[port], self._col_start[port + 1]
                positions = self._col_order[lo:hi]
                partners = self._rows[positions]
            if service.lane_mask is not None:
                keep = np.asarray(service.lane_mask, dtype=bool)[partners]
                positions = positions[keep]
                partners = partners[keep]
            services.append((service.kind == "o2m", positions, partners))

        # Phase-level observability: one span per run_phase call (never
        # per-event — the event loop is the hot path).
        obs_on = obs.active()
        if obs_on:
            tracer = obs.get_tracer()
            span = (
                tracer.begin(
                    "engine.phase",
                    duration=duration,
                    circuits=int(circuit_pos.size),
                    composites=len(services),
                    eps_enabled=eps_enabled,
                    clock_ms=self.clock,
                )
                if tracer.enabled
                else None
            )
            segments_before = len(self.segments)
            dust_before = self._dust_snaps

        # ---- gather residuals over the support -------------------------
        reg = self.regular[self._rows, self._cols]
        comp = self.composite[self._rows, self._cols]
        params = self.params
        ocs_rate = params.ocs_rate
        eps_budget = params.effective_eps_budget
        reg_rate = self._reg_rate
        comp_rate = self._comp_rate
        in_cap = self._in_cap
        out_cap = self._out_cap

        while remaining > TIME_TOL:
            # -- rates for the current residuals --
            reg_rate.fill(0.0)
            comp_rate.fill(0.0)
            if base_cap is None:
                in_cap.fill(params.eps_rate)
                out_cap.fill(params.eps_rate)
            else:
                in_cap[:] = base_cap
                out_cap[:] = base_cap

            # Regular OCS circuits.
            circuit_total = 0.0
            if circuit_pos.size:
                live = circuit_pos[reg[circuit_pos] > VOLUME_TOL]
                reg_rate[live] = ocs_rate
                circuit_total = ocs_rate * live.size

            # Composite paths: CPSched rates + EPS reservation.
            composite_total = 0.0
            for is_o2m, positions, partners in services:
                if positions.size == 0:
                    continue
                active = comp[positions] > VOLUME_TOL
                count = int(np.count_nonzero(active))
                if count == 0:
                    continue
                rate = min(eps_budget, ocs_rate / count)
                if base_cap is None:
                    comp_rate[positions[active]] += rate
                    if is_o2m:
                        out_cap[partners[active]] -= rate  # destination EPS links
                    else:
                        in_cap[partners[active]] -= rate  # source EPS links
                    composite_total += rate * count
                else:
                    # Each filtered entry's EPS leg is capped by its own
                    # (possibly degraded) link rate.
                    live_partners = partners[active]
                    per_entry = np.minimum(rate, base_cap[live_partners])
                    comp_rate[positions[active]] += per_entry
                    if is_o2m:
                        out_cap[live_partners] -= per_entry
                    else:
                        in_cap[live_partners] -= per_entry
                    composite_total += float(per_entry.sum())
            np.clip(in_cap, 0.0, None, out=in_cap)
            np.clip(out_cap, 0.0, None, out=out_cap)

            # EPS: everything regular that no circuit is serving right now.
            eps_total = 0.0
            if eps_enabled:
                flows = np.nonzero((reg > VOLUME_TOL) & (reg_rate <= 0))[0]
                if flows.size:
                    eps_rates = max_min_fair_rates(
                        self._rows[flows], self._cols[flows], in_cap, out_cap
                    )
                    reg_rate[flows] += eps_rates
                    eps_total = float(eps_rates.sum())

            # -- time until the earliest served entry drains --
            dt_event = np.inf
            served = reg_rate > 0
            if served.any():
                dt_event = min(dt_event, float((reg[served] / reg_rate[served]).min()))
            served = comp_rate > 0
            if served.any():
                dt_event = min(dt_event, float((comp[served] / comp_rate[served]).min()))
            if not np.isfinite(dt_event) and open_ended:
                break  # nothing left to serve

            dt = min(dt_event, remaining)
            if dt <= TIME_TOL:
                # A served entry's residual is dust: its drain time fell
                # below the time tolerance.  Snap it to zero and keep the
                # event loop going so every other entry continues to be
                # served.  (The seed engine idled out the whole remaining
                # phase here, silently skipping service for everyone.)
                self._snap_dust(reg, comp, reg_rate, comp_rate)
                continue

            # -- advance time by dt at the computed rates --
            np.add(reg, comp, out=self._before)
            np.multiply(reg_rate, dt, out=self._scratch)
            np.subtract(reg, self._scratch, out=reg)
            np.multiply(comp_rate, dt, out=self._scratch)
            np.subtract(comp, self._scratch, out=comp)
            np.clip(reg, 0.0, None, out=reg)
            np.clip(comp, 0.0, None, out=comp)
            # Snap float dust to exact zero so drained entries stay drained.
            reg[reg <= VOLUME_TOL] = 0.0
            comp[comp <= VOLUME_TOL] = 0.0
            np.add(reg, comp, out=self._after)

            newly_done = (
                self._flat_demanded
                & (self._before > VOLUME_TOL)
                & (self._after <= VOLUME_TOL)
            )
            if newly_done.any():
                done = np.nonzero(newly_done)[0]
                self.finish_times[self._rows[done], self._cols[done]] = self.clock + dt

            # dt never exceeds residual/rate for any served entry, so
            # rate*dt is the exact served volume per mechanism (up to the
            # snap tolerance).
            self.served_ocs_direct += circuit_total * dt
            self.served_composite += composite_total * dt
            self.served_eps += eps_total * dt
            self.segments.append(
                RateSegment(
                    start=self.clock,
                    end=self.clock + dt,
                    ocs_direct_rate=circuit_total,
                    composite_rate=composite_total,
                    eps_rate=eps_total,
                )
            )
            self.clock += dt
            remaining -= dt

        # ---- scatter residuals back ------------------------------------
        self.regular[self._rows, self._cols] = reg
        self.composite[self._rows, self._cols] = comp

        if obs_on:
            events = len(self.segments) - segments_before
            dust = self._dust_snaps - dust_before
            if span is not None:
                tracer.end(span, events=events, dust_snaps=dust, clock_ms=self.clock)
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "engine_phases_total", "run_phase() calls executed"
                ).inc()
                metrics.counter(
                    "engine_events_total", "rate-change events across all phases"
                ).inc(events)
                if dust:
                    metrics.counter(
                        "engine_dust_snaps_total",
                        "sub-tolerance residuals snapped to zero",
                    ).inc(dust)

    def _snap_dust(
        self,
        reg: np.ndarray,
        comp: np.ndarray,
        reg_rate: np.ndarray,
        comp_rate: np.ndarray,
    ) -> None:
        """Zero every served entry whose drain time is below ``TIME_TOL``.

        At least one served entry (the one attaining the sub-tolerance
        ``dt_event``) is zeroed per call, so the event loop strictly
        progresses.  The skipped volume is below ``rate * TIME_TOL`` per
        entry — far inside the conservation tolerance — and is deliberately
        not credited to any mechanism.
        """
        self._dust_snaps += 1
        np.add(reg, comp, out=self._before)
        for residual, rate in ((reg, reg_rate), (comp, comp_rate)):
            served = rate > 0
            if not served.any():
                continue
            np.divide(residual, rate, out=self._scratch, where=served)
            self._scratch[~served] = np.inf
            residual[self._scratch <= TIME_TOL] = 0.0
        np.add(reg, comp, out=self._after)
        newly_done = (
            self._flat_demanded
            & (self._before > VOLUME_TOL)
            & (self._after <= VOLUME_TOL)
        )
        if newly_done.any():
            done = np.nonzero(newly_done)[0]
            self.finish_times[self._rows[done], self._cols[done]] = self.clock

    # ------------------------------------------------------------------ #
    # result
    # ------------------------------------------------------------------ #

    def residual_total(self) -> float:
        """Total undelivered volume (Mb)."""
        return float(self.regular.sum() + self.composite.sum())

    def result(
        self,
        n_configs: int,
        makespan: float,
        *,
        allow_residual: bool = False,
        fault_summary=None,
        reroute=None,
    ) -> SimulationResult:
        """Freeze the engine state into a :class:`SimulationResult`.

        With ``allow_residual`` (horizon-bounded executions) the leftover
        demand is reported instead of rejected; pending entries keep their
        ``nan`` finish times and the completion time becomes ``nan``.
        ``fault_summary`` attaches the injected-fault record of a faulted
        run; ``reroute`` attaches the fast-reroute swap record.
        """
        leftover = self.residual_total()
        if leftover > VOLUME_TOL * max(1, self.n) ** 2 and not allow_residual:
            raise RuntimeError(
                f"simulation ended with {leftover} Mb undelivered; "
                "run a final drain phase first"
            )
        finished = self.finish_times[self.demanded]
        if finished.size == 0:
            completion = 0.0
        elif np.isnan(finished).any():
            completion = float("nan")  # something is still pending
        else:
            completion = float(finished.max())
        result = SimulationResult(
            finish_times=self.finish_times,
            completion_time=completion,
            n_configs=n_configs,
            makespan=makespan,
            segments=self.segments,
            served_ocs_direct=self.served_ocs_direct,
            served_composite=self.served_composite,
            served_eps=self.served_eps,
            total_demand=self.total_demand,
            residual=(self.regular + self.composite) if allow_residual else None,
            released_composite=self.released_composite,
            fault_summary=fault_summary,
            reroute=reroute,
        )
        result.check_conservation(tol=1e-6)
        return result
