"""Simulation outputs and the paper's evaluation metrics (§3.1).

Three metrics drive every figure:

* **completion time** — when the last bit of a demand (sub)set is
  delivered; Solstice's optimization target (Figures 5, 7, 9, 11);
* **fraction of demand served by the OCS** within a scheduling window —
  Eclipse's target, a proxy for OCS utilization (Figures 6, 8, 10); volume
  crossing composite paths counts, since it traverses the OCS leg;
* **number of OCS configurations** — strongly correlated with both
  (Figures 5c–10c).

:class:`SimulationResult` carries per-entry finish times (for coflow
completion on arbitrary entry subsets) and a piecewise-constant service
rate timeline (for windowed volume integrals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.faults.plan import FaultSummary
from repro.faults.reroute import RerouteOutcome
from repro.utils.validation import VOLUME_TOL


@dataclass(frozen=True)
class RateSegment:
    """Aggregate service rates over one constant-rate interval.

    Attributes
    ----------
    start, end:
        Interval bounds (ms, absolute simulation time).
    ocs_direct_rate:
        Total rate over regular OCS-OCS circuits (Mb/ms).
    composite_rate:
        Total rate over composite paths (Mb/ms) — also OCS traffic.
    eps_rate:
        Total rate over regular EPS-EPS paths (Mb/ms).
    """

    start: float
    end: float
    ocs_direct_rate: float
    composite_rate: float
    eps_rate: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def ocs_rate(self) -> float:
        """Total rate crossing the OCS (direct + composite)."""
        return self.ocs_direct_rate + self.composite_rate


@dataclass
class SimulationResult:
    """Outcome of executing one schedule on one demand matrix.

    Attributes
    ----------
    finish_times:
        n×n array: time (ms) entry (i, j) fully drained; ``nan`` for
        entries with no demand.
    completion_time:
        Max finish time over all demanded entries (ms); 0 for empty demand.
    n_configs:
        OCS configurations executed.
    makespan:
        OCS schedule length (circuit time + one δ per configuration), ms.
    segments:
        Constant-rate service timeline covering [0, completion_time].
    served_ocs_direct, served_composite, served_eps:
        Volume (Mb) delivered by each mechanism; with the residual, their
        sum equals the total demand (conservation is asserted by the
        engine).
    total_demand:
        Total input demand volume (Mb).
    residual:
        Undelivered n×n demand (Mb) — non-zero only for horizon-bounded
        executions; entries still pending have ``nan`` finish times and
        ``completion_time`` is then ``nan`` as well.
    released_composite:
        Volume (Mb) that was parked on a composite path whose port died
        and *fell back* to the regular EPS/OCS paths (graceful cp-Switch →
        h-Switch degradation).  Whatever of it was delivered is counted
        under ``served_ocs_direct``/``served_eps``, so conservation is
        unaffected; this field records how much demand had to be re-routed.
    fault_summary:
        Record of the faults injected into this run, or ``None`` for a
        fault-free execution.
    reroute:
        :class:`~repro.faults.reroute.RerouteOutcome` of a run executed
        with fast-reroute backups armed (swap events, recovery latency,
        re-parked volume); ``None`` when the feature was off.
    """

    finish_times: np.ndarray
    completion_time: float
    n_configs: int
    makespan: float
    segments: "list[RateSegment]" = field(default_factory=list)
    served_ocs_direct: float = 0.0
    served_composite: float = 0.0
    served_eps: float = 0.0
    total_demand: float = 0.0
    residual: "np.ndarray | None" = None
    released_composite: float = 0.0
    fault_summary: "FaultSummary | None" = None
    reroute: "RerouteOutcome | None" = None

    @property
    def residual_total(self) -> float:
        """Total undelivered volume (Mb); 0 for run-to-completion results."""
        return float(self.residual.sum()) if self.residual is not None else 0.0

    @property
    def delivered_volume(self) -> float:
        """Total volume (Mb) delivered across all mechanisms."""
        return self.served_ocs_direct + self.served_composite + self.served_eps

    @property
    def stranded_volume(self) -> float:
        """Volume (Mb) still undelivered when the run ended.

        The delivered-vs-stranded ledger: ``delivered_volume +
        stranded_volume == total_demand`` (asserted by
        :meth:`check_conservation`).  Run-to-completion executions strand
        nothing — even under faults, dead-path demand falls back to the
        regular paths and drains; horizon-bounded executions strand the
        residual.
        """
        return self.residual_total

    @property
    def faulted(self) -> bool:
        """Whether any fault was injected into this run."""
        return self.fault_summary is not None and self.fault_summary.total_events > 0

    @property
    def finished(self) -> bool:
        """Whether every demanded bit was delivered.

        The cutoff is *relative* to the total demand (floored at the
        absolute :data:`~repro.utils.validation.VOLUME_TOL`), matching
        :meth:`check_conservation` — a petabit-scale run must not report
        unfinished over accumulated float dust.
        """
        return self.residual_total <= VOLUME_TOL * max(1.0, self.total_demand)

    @property
    def delivered_fraction(self) -> float:
        """Share of the demand delivered (1.0 when finished).

        Zero-demand convention: 1.0 — an empty demand is vacuously fully
        served.  :meth:`ocs_fraction_within` follows the same convention.
        """
        if self.total_demand <= 0:
            return 1.0
        return 1.0 - self.residual_total / self.total_demand

    # ------------------------------------------------------------------ #
    # coflow completion
    # ------------------------------------------------------------------ #

    def coflow_completion(self, mask: np.ndarray) -> float:
        """Completion time (ms) of the demand subset selected by ``mask``.

        The coflow abstraction (§1): a collection of flows sharing a
        completion time — the last flow's finish.  Returns 0.0 if the mask
        selects no demanded entries, and ``math.inf`` if any selected flow
        was still pending when the run ended (horizon-bounded executions):
        a coflow whose flows never finished has no finite completion time,
        and reporting 0.0 would silently rank it *best* in every figure.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.finish_times.shape:
            raise ValueError(
                f"mask shape {mask.shape} != finish_times shape {self.finish_times.shape}"
            )
        selected = self.finish_times[mask]
        pending = np.isnan(selected)
        if pending.any() and self.residual is not None:
            # nan finish + leftover volume = the flow never drained (as
            # opposed to nan-because-never-demanded, which contributes 0).
            if np.any(self.residual[mask][pending] > VOLUME_TOL):
                obs.get_metrics().counter(
                    "coflow_never_finished_total",
                    "coflow_completion() calls whose mask held unfinished flows",
                ).inc()
                return math.inf
        selected = selected[~pending]
        return float(selected.max()) if selected.size else 0.0

    # ------------------------------------------------------------------ #
    # windowed volume integrals
    # ------------------------------------------------------------------ #

    def ocs_volume_by(self, time: float) -> float:
        """Volume (Mb) delivered across the OCS in [0, ``time``].

        Includes composite-path traffic (it crosses the OCS leg).
        """
        return self._integrate(time, lambda s: s.ocs_rate)

    def composite_volume_by(self, time: float) -> float:
        """Volume (Mb) delivered over composite paths in [0, ``time``]."""
        return self._integrate(time, lambda s: s.composite_rate)

    def eps_volume_by(self, time: float) -> float:
        """Volume (Mb) delivered over regular EPS paths in [0, ``time``]."""
        return self._integrate(time, lambda s: s.eps_rate)

    def ocs_fraction_within(self, window: float) -> float:
        """Fraction of the total demand the OCS delivered in [0, window].

        This is Eclipse's objective and the y-axis of Figures 6, 8 and 10.

        Zero-demand convention: returns 1.0, like
        :attr:`delivered_fraction` — an empty demand is vacuously fully
        served (and ``finished`` is ``True``), so every "fraction of
        demand" metric agrees on 1.0 rather than a mix of 0.0 and 1.0.
        """
        if self.total_demand <= 0:
            return 1.0
        return self.ocs_volume_by(window) / self.total_demand

    def _integrate(self, time: float, rate_of) -> float:
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        volume = 0.0
        for segment in self.segments:
            if segment.start >= time:
                break
            overlap = min(segment.end, time) - segment.start
            if overlap > 0:
                volume += overlap * rate_of(segment)
        return volume

    # ------------------------------------------------------------------ #
    # sanity
    # ------------------------------------------------------------------ #

    def check_conservation(self, tol: float = 1e-6) -> None:
        """Raise if delivered + stranded volume does not match the demand.

        This must hold under every fault mix: faults re-route volume
        (dead composite paths fall back to regular paths) or delay it
        (failed circuits, straggling reconfigurations), but never destroy
        it.
        """
        delivered = self.delivered_volume
        drift = abs(delivered + self.residual_total - self.total_demand)
        if drift > tol * max(1.0, self.total_demand):
            raise AssertionError(
                f"volume conservation violated: delivered={delivered} Mb, "
                f"residual={self.residual_total} Mb, demand={self.total_demand} Mb"
            )
        if self.released_composite > self.total_demand + tol * max(1.0, self.total_demand):
            raise AssertionError(
                f"released composite volume ({self.released_composite} Mb) exceeds "
                f"the total demand ({self.total_demand} Mb)"
            )
