"""Online execution of an h-Switch schedule (§3: "online execution").

Phases, in scheduler order: for every configuration, a reconfiguration gap
of δ (OCS dark, EPS serving), then the configuration held for its duration
(circuits at ``Co``, EPS serving everything else).  After the last
configuration the OCS goes dark and the EPS drains whatever remains.

A ``horizon`` bounds execution to a fixed wall-clock budget instead —
phases are truncated at the horizon and the leftover demand is reported as
residual (used by the closed-loop epoch controller to study sustained
load).

``faults`` injects hardware imperfections (see :mod:`repro.faults`): a
failed reconfiguration burns δ and then holds the configuration dark (EPS
keeps serving, circuits serve zero rate), a straggling one stretches δ,
individual circuits can fail to establish, and degraded EPS ports serve at
a fraction of ``Ce`` — all without ever losing volume.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injector import as_injector
from repro.hybrid.schedule import Schedule
from repro.sim.engine import FluidEngine
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams


def simulate_hybrid(
    demand: np.ndarray,
    schedule: Schedule,
    params: SwitchParams,
    horizon: "float | None" = None,
    faults=None,
) -> SimulationResult:
    """Execute ``schedule`` on ``demand``; return completion metrics.

    Parameters
    ----------
    demand:
        n×n demand matrix (Mb).
    schedule:
        OCS schedule whose permutations are n×n (i.e. an h-Switch schedule
        for this demand, not a reduced cp-Switch one).
    params:
        Switch parameters; ``params.reconfig_delay`` should match
        ``schedule.reconfig_delay``.
    horizon:
        Optional execution budget (ms).  ``None`` runs to completion;
        otherwise execution stops at the horizon and the result carries
        the residual demand.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (realized with
        stream 0) or pre-built :class:`~repro.faults.injector.FaultInjector`
        describing hardware faults to inject.  ``None`` — the default —
        executes the fault-free model bit-identically to earlier releases.
    """
    demand = np.asarray(demand, dtype=np.float64)
    if len(schedule) and schedule[0].size != demand.shape[0]:
        raise ValueError(
            f"schedule permutations are {schedule[0].size}x{schedule[0].size} but "
            f"demand is {demand.shape[0]}x{demand.shape[0]}; "
            "use simulate_cp for reduced cp-Switch schedules"
        )
    if horizon is not None and horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    engine = FluidEngine(demand, params)
    injector = as_injector(faults, demand.shape[0])
    eps_scale = injector.eps_port_scale if injector is not None else None

    def budget(duration: float) -> float:
        if horizon is None:
            return duration
        return min(duration, max(0.0, horizon - engine.clock))

    for entry in schedule:
        if horizon is not None and engine.clock >= horizon:
            break
        if injector is not None:
            delta, established = injector.reconfigure(params.reconfig_delay)
        else:
            delta, established = params.reconfig_delay, True
        engine.run_phase(budget(delta), eps_port_scale=eps_scale)  # OCS dark, EPS on
        if horizon is not None and engine.clock >= horizon:
            break
        circuits = entry.permutation if established else None
        if injector is not None and established:
            circuits = injector.surviving_circuits(circuits)
        engine.run_phase(
            budget(entry.duration), circuits=circuits, eps_port_scale=eps_scale
        )

    summary = injector.summary if injector is not None else None
    if horizon is None:
        engine.run_phase(None, eps_port_scale=eps_scale)  # EPS-only drain
        return engine.result(
            n_configs=schedule.n_configs,
            makespan=schedule.makespan,
            fault_summary=summary,
        )
    if engine.clock < horizon:
        # EPS-only until the horizon.
        engine.run_phase(horizon - engine.clock, eps_port_scale=eps_scale)
    return engine.result(
        n_configs=schedule.n_configs,
        makespan=schedule.makespan,
        allow_residual=True,
        fault_summary=summary,
    )
