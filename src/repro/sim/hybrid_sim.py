"""Online execution of an h-Switch schedule (§3: "online execution").

Phases, in scheduler order: for every configuration, a reconfiguration gap
of δ (OCS dark, EPS serving), then the configuration held for its duration
(circuits at ``Co``, EPS serving everything else).  After the last
configuration the OCS goes dark and the EPS drains whatever remains.

A ``horizon`` bounds execution to a fixed wall-clock budget instead —
phases are truncated at the horizon and the leftover demand is reported as
residual (used by the closed-loop epoch controller to study sustained
load).
"""

from __future__ import annotations

import numpy as np

from repro.hybrid.schedule import Schedule
from repro.sim.engine import FluidEngine
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams


def simulate_hybrid(
    demand: np.ndarray,
    schedule: Schedule,
    params: SwitchParams,
    horizon: "float | None" = None,
) -> SimulationResult:
    """Execute ``schedule`` on ``demand``; return completion metrics.

    Parameters
    ----------
    demand:
        n×n demand matrix (Mb).
    schedule:
        OCS schedule whose permutations are n×n (i.e. an h-Switch schedule
        for this demand, not a reduced cp-Switch one).
    params:
        Switch parameters; ``params.reconfig_delay`` should match
        ``schedule.reconfig_delay``.
    horizon:
        Optional execution budget (ms).  ``None`` runs to completion;
        otherwise execution stops at the horizon and the result carries
        the residual demand.
    """
    demand = np.asarray(demand, dtype=np.float64)
    if len(schedule) and schedule[0].size != demand.shape[0]:
        raise ValueError(
            f"schedule permutations are {schedule[0].size}x{schedule[0].size} but "
            f"demand is {demand.shape[0]}x{demand.shape[0]}; "
            "use simulate_cp for reduced cp-Switch schedules"
        )
    if horizon is not None and horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    engine = FluidEngine(demand, params)

    def budget(duration: float) -> float:
        if horizon is None:
            return duration
        return min(duration, max(0.0, horizon - engine.clock))

    for entry in schedule:
        if horizon is not None and engine.clock >= horizon:
            break
        engine.run_phase(budget(params.reconfig_delay))  # OCS dark, EPS on
        if horizon is not None and engine.clock >= horizon:
            break
        engine.run_phase(budget(entry.duration), circuits=entry.permutation)

    if horizon is None:
        engine.run_phase(None)  # EPS-only drain of leftovers
        return engine.result(n_configs=schedule.n_configs, makespan=schedule.makespan)
    if engine.clock < horizon:
        engine.run_phase(horizon - engine.clock)  # EPS-only until the horizon
    return engine.result(
        n_configs=schedule.n_configs, makespan=schedule.makespan, allow_residual=True
    )
