"""Online execution of cp-Switch schedules (base and k-path variants).

Differences from the h-Switch execution:

* the filtered demand ``Df`` is parked on the composite residual before the
  schedule starts (Algorithm 1's split) and is served **only** by composite
  paths while the schedule runs;
* each configuration may additionally grant one-to-many / many-to-one
  composite paths, served at the CPSched rates with ``Ce*`` reserved on the
  EPS links they traverse;
* after the schedule, unfinished filtered demand returns to the EPS for the
  final drain (it is ordinary packet traffic at that point).

As with :func:`repro.sim.hybrid_sim.simulate_hybrid`, a ``horizon`` bounds
execution: phases truncate at the horizon and the leftover — including
composite residual the schedule never got to — is reported, not drained.

``faults`` injects hardware imperfections (see :mod:`repro.faults`).  On
top of the h-Switch channels (reconfiguration failures/stragglers, circuit
setup failures, EPS degradation), a granted composite path's port can
suffer a *permanent outage*: the grant is dropped and the filtered demand
parked on the dead path is immediately released back to the regular
EPS/OCS paths — the cp-Switch degrades gracefully toward h-Switch
behaviour, completion time rises, and volume is never lost.

``backups`` arms fast-reroute (:mod:`repro.faults.reroute`): when an
outage is discovered mid-run, the matching precomputed backup is swapped
in at the current phase boundary — orphaned filtered demand is re-parked
onto composite paths that surviving grants still serve, and the dead
grants are stripped from the pending tail — instead of degrading to an
EPS-only drain for the rest of the run.  With no outage (or no injector)
the armed backups are never consulted and execution is bit-identical to a
run without them.
"""

from __future__ import annotations

import numpy as np

from repro.core.multipath import MultiPathCpSchedule
from repro.core.scheduler import CpSchedule
from repro.faults.injector import as_injector
from repro.faults.reroute import RerouteOutcome, RerouteRuntime
from repro.sim.engine import CompositeService, FluidEngine
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams


def simulate_cp(
    demand: np.ndarray,
    cp_schedule: CpSchedule,
    params: SwitchParams,
    horizon: "float | None" = None,
    faults=None,
    backups=None,
) -> SimulationResult:
    """Execute a base (single path per direction) cp-Switch schedule.

    Parameters
    ----------
    demand:
        The original n×n demand ``D`` the schedule was computed for (Mb).
    cp_schedule:
        Output of :class:`repro.core.scheduler.CpSwitchScheduler`.
    params:
        Switch parameters (δ, rates, ``Ce*``).
    horizon:
        Optional execution budget (ms); see
        :func:`repro.sim.hybrid_sim.simulate_hybrid`.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` or pre-built
        :class:`~repro.faults.injector.FaultInjector`; ``None`` executes
        the fault-free model bit-identically to earlier releases.
    backups:
        Optional :class:`~repro.faults.reroute.BackupSet` precomputed for
        ``cp_schedule`` — arms fast-reroute for mid-run composite-port
        outages.
    """
    def composites_for(entry) -> "list[CompositeService]":
        services: list[CompositeService] = []
        if entry.o2m_port is not None:
            services.append(CompositeService(kind="o2m", port=entry.o2m_port))
        if entry.m2o_port is not None:
            services.append(CompositeService(kind="m2o", port=entry.m2o_port))
        return services

    return _run(
        demand,
        cp_schedule.entries,
        cp_schedule.reduction.filtered,
        composites_for,
        lambda entry: entry.regular,
        params,
        horizon,
        n_configs=cp_schedule.n_configs,
        makespan=cp_schedule.makespan,
        faults=faults,
        backups=backups,
    )


def simulate_multipath(
    demand: np.ndarray,
    mp_schedule: MultiPathCpSchedule,
    params: SwitchParams,
    horizon: "float | None" = None,
    faults=None,
    backups=None,
) -> SimulationResult:
    """Execute a k-path cp-Switch schedule (§4 extension).

    Each granted path serves only the filtered entries the reduction
    assigned to it (its *lane*), unlike the base scheduler which serves the
    whole filtered row/column — with k paths the lanes are what prevents two
    paths from double-serving one entry.  A composite-port outage
    (``faults``) kills one (direction, port) lane set; its parked demand
    falls back to the regular paths.

    ``backups`` arms fast-reroute as in :func:`simulate_cp`.  Note that
    :class:`~repro.faults.reroute.BackupPlanner` only plans for base
    schedules; a caller arming a k-path run must account for lanes itself —
    re-parked demand outside every surviving lane waits for the final
    drain (volume is still conserved).
    """
    reduction = mp_schedule.reduction

    def composites_for(entry) -> "list[CompositeService]":
        services: list[CompositeService] = []
        for path, sender in entry.o2m_grants.items():
            lane = reduction.o2m_path[sender, :] == path
            services.append(CompositeService(kind="o2m", port=sender, lane_mask=lane))
        for path, receiver in entry.m2o_grants.items():
            lane = reduction.m2o_path[:, receiver] == path
            services.append(CompositeService(kind="m2o", port=receiver, lane_mask=lane))
        return services

    return _run(
        demand,
        mp_schedule.entries,
        reduction.filtered,
        composites_for,
        lambda entry: entry.regular,
        params,
        horizon,
        n_configs=mp_schedule.n_configs,
        makespan=mp_schedule.makespan,
        faults=faults,
        backups=backups,
    )


def _surviving_composites(engine, injector, services):
    """Drop grants on dead composite ports, failing their demand over.

    The outage is discovered at grant time (the controller cannot see a
    port die until it tries to use it); the parked composite residual of a
    dead path is released to the regular matrices *before* the phase runs,
    so the EPS — and any circuit matching those entries — serves it from
    this configuration onward.
    """
    alive = []
    for service in services:
        if injector.composite_port_up(service.kind, service.port):
            alive.append(service)
        else:
            released = engine.release_composite(
                service.kind, service.port, service.lane_mask
            )
            injector.note_released(released)
    return alive


def _run(
    demand: np.ndarray,
    entries,
    filtered: np.ndarray,
    composites_for,
    circuits_for,
    params: SwitchParams,
    horizon: "float | None",
    *,
    n_configs: int,
    makespan: float,
    faults=None,
    backups=None,
) -> SimulationResult:
    if horizon is not None and horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    engine = FluidEngine(np.asarray(demand, dtype=np.float64), params)
    engine.assign_composite(filtered)
    injector = as_injector(faults, engine.n)
    eps_scale = injector.eps_port_scale if injector is not None else None
    # Fast-reroute needs an injector to detect outages with; armed backups
    # without one can never fire (outages only exist inside an injector).
    reroute = (
        RerouteRuntime(backups, engine, injector)
        if backups is not None and injector is not None
        else None
    )

    def budget(duration: float) -> float:
        if horizon is None:
            return duration
        return min(duration, max(0.0, horizon - engine.clock))

    truncated = False
    pending = list(entries)
    index = 0
    while index < len(pending):
        entry = pending[index]
        if horizon is not None and engine.clock >= horizon:
            truncated = True
            break
        if injector is not None:
            delta, established = injector.reconfigure(params.reconfig_delay)
        else:
            delta, established = params.reconfig_delay, True
        engine.run_phase(budget(delta), eps_port_scale=eps_scale)
        if horizon is not None and engine.clock >= horizon:
            truncated = True
            break
        if established:
            circuits = circuits_for(entry)
            composites = composites_for(entry)
            if injector is not None:
                circuits = injector.surviving_circuits(circuits)
                granted = len(composites)
                composites = _surviving_composites(engine, injector, composites)
                if reroute is not None and len(composites) < granted:
                    # An outage surfaced on this configuration's grants:
                    # swap to the matching precomputed backup at this phase
                    # boundary.  The current configuration keeps running
                    # with its surviving grants.
                    pending, composites_for, _ = reroute.on_outage(
                        pending, index, composites, composites_for
                    )
            if reroute is not None:
                reroute.note_hold(composites)
        else:
            # The whole configuration failed to establish: neither its
            # circuits nor its composite grants exist; parked filtered
            # demand simply waits for a later grant.
            circuits, composites = None, ()
        engine.run_phase(
            budget(entry.duration),
            circuits=circuits,
            composites=composites,
            eps_port_scale=eps_scale,
        )
        index += 1
    if horizon is not None and engine.clock >= horizon:
        truncated = True

    summary = injector.summary if injector is not None else None
    if reroute is not None:
        outcome = None  # filled after the drain decision below
    elif backups is not None:
        outcome = RerouteOutcome(backups_armed=backups.n_armed)
    else:
        outcome = None
    if horizon is None:
        if reroute is not None:
            reroute.note_drain()
            outcome = reroute.outcome()
        engine.merge_composite_into_regular()
        engine.run_phase(None, eps_port_scale=eps_scale)
        return engine.result(
            n_configs=n_configs,
            makespan=makespan,
            fault_summary=summary,
            reroute=outcome,
        )
    if not truncated:
        # The schedule finished before the horizon: composite leftovers
        # become ordinary packet traffic for the remaining budget.
        if reroute is not None:
            reroute.note_drain()
        engine.merge_composite_into_regular()
        engine.run_phase(horizon - engine.clock, eps_port_scale=eps_scale)
    if reroute is not None:
        outcome = reroute.outcome()
    return engine.result(
        n_configs=n_configs,
        makespan=makespan,
        allow_residual=True,
        fault_summary=summary,
        reroute=outcome,
    )
