"""Max-min fair rate allocation for the EPS fabric.

The EPS can send from any port to any port simultaneously (§1), limited by
each input and output link's rate ``Ce``.  Among the demand entries it
serves concurrently, the simulator allocates **max-min fair** rates — the
classic water-filling allocation, which is what per-VOQ fair queueing on a
crossbar converges to.  (The packet-level cross-check in
:mod:`repro.sim.packetlevel` validates the abstraction.)

The algorithm is vectorized progressive filling: all unfrozen flows grow at
the same rate until some port saturates; flows through saturated ports
freeze; repeat.  Each round saturates at least one port, so there are at
most ``2n`` rounds of O(E) numpy work.
"""

from __future__ import annotations

import numpy as np

_RATE_TOL = 1e-12


def max_min_fair_rates(
    rows: np.ndarray,
    cols: np.ndarray,
    in_capacity: np.ndarray,
    out_capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for flows ``(rows[k], cols[k])``.

    Parameters
    ----------
    rows, cols:
        Flow endpoints: flow ``k`` goes from input ``rows[k]`` to output
        ``cols[k]``.  Multiple flows may share endpoints.
    in_capacity, out_capacity:
        Per-port available capacities (Mb/ms).  May be zero (e.g. a link
        fully reserved by a composite path), in which case flows through
        that port get rate 0.

    Returns
    -------
    Array of per-flow rates (Mb/ms), same length as ``rows``.  The
    allocation saturates every bottleneck port: no flow can be sped up
    without slowing a flow of equal or lower rate.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError("rows and cols must be 1-D arrays of equal length")
    n_flows = rows.size
    rates = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0:
        return rates

    n_in = int(in_capacity.shape[0])
    n_out = int(out_capacity.shape[0])
    in_rem = np.asarray(in_capacity, dtype=np.float64).copy()
    out_rem = np.asarray(out_capacity, dtype=np.float64).copy()
    if np.any(in_rem < -_RATE_TOL) or np.any(out_rem < -_RATE_TOL):
        raise ValueError("capacities must be non-negative")
    np.clip(in_rem, 0.0, None, out=in_rem)
    np.clip(out_rem, 0.0, None, out=out_rem)

    # Active-flow arrays shrink as flows freeze, so later rounds touch
    # progressively less data.  Each round saturates at least one port, so
    # the loop runs at most n_in + n_out times.
    active_idx = np.arange(n_flows)
    active_rows = rows
    active_cols = cols
    for _round in range(n_in + n_out + 1):
        if active_idx.size == 0:
            break
        in_count = np.bincount(active_rows, minlength=n_in)
        out_count = np.bincount(active_cols, minlength=n_out)
        with np.errstate(divide="ignore", invalid="ignore"):
            in_share = np.where(in_count > 0, in_rem / np.maximum(in_count, 1), np.inf)
            out_share = np.where(out_count > 0, out_rem / np.maximum(out_count, 1), np.inf)
        step = min(in_share.min(), out_share.min())
        if step > _RATE_TOL and np.isfinite(step):
            rates[active_idx] += step
            in_rem -= step * in_count
            out_rem -= step * out_count
            np.maximum(in_rem, 0.0, out=in_rem)
            np.maximum(out_rem, 0.0, out=out_rem)
        # Freeze flows through ports that are now saturated (or whose
        # remaining capacity is below one per-flow tolerance share — such
        # ports would otherwise stall the filling loop with sub-tolerance
        # steps forever).
        in_saturated = (in_rem <= _RATE_TOL * np.maximum(in_count, 1)) & (in_count > 0)
        out_saturated = (out_rem <= _RATE_TOL * np.maximum(out_count, 1)) & (out_count > 0)
        frozen_now = in_saturated[active_rows] | out_saturated[active_cols]
        if not frozen_now.any():
            # No port saturated: all remaining shares were infinite, which
            # cannot happen while counts are positive; defensive break.
            break
        keep = ~frozen_now
        active_idx = active_idx[keep]
        active_rows = active_rows[keep]
        active_cols = active_cols[keep]
    return rates


def max_min_fair_rate_matrix(
    active: np.ndarray,
    in_capacity: np.ndarray,
    out_capacity: np.ndarray,
) -> np.ndarray:
    """Matrix-shaped convenience wrapper over :func:`max_min_fair_rates`.

    ``active`` is a boolean n_in×n_out mask of flows to serve; the result is
    a rate matrix of the same shape (zero where inactive).
    """
    active = np.asarray(active, dtype=bool)
    rates = np.zeros(active.shape, dtype=np.float64)
    rows, cols = np.nonzero(active)
    if rows.size:
        rates[rows, cols] = max_min_fair_rates(rows, cols, in_capacity, out_capacity)
    return rates
