"""Frozen pre-optimization reference implementations of the hot paths.

This module preserves, verbatim, the seed revision's implementations of
the kernels that the vectorization work rewrote:

* :class:`ReferenceFluidEngine` — the original per-event full-matrix
  fluid engine (``n×n`` rate/residual arrays rebuilt on every event);
* :func:`reference_quick_stuff` — Solstice's QuickStuff with the
  per-entry numpy-scalar pass-1 loop;
* :func:`reference_maximum_matching_mask` — the Hopcroft–Karp wrapper
  that builds its CSR graph through scipy's dense→COO→CSR conversion;
* :func:`reference_cp_switch_demand_reduction` — Algorithm 1 with the
  numpy-scalar greedy both-qualify loop.

They exist for two reasons:

1. **Perf trajectory.** ``benchmarks/bench_perf.py`` times the reference
   pipeline ("before") against the optimized library ("after") and writes
   both to ``BENCH_engine.json``, so every future PR can compare against a
   recorded baseline instead of folklore.
2. **Ground truth.** The optimized engine must be *bit-identical* to the
   reference on the seeded benchmark points (same per-entry finish times,
   same completion times, conservation intact).  The perf harness and the
   property tests assert this on every run.

The only intentional behavioural difference is the phase-skip dust bug
(see ``FluidEngine.run_phase``): the reference engine preserves the seed
behaviour of idling out the rest of a phase when a near-drained entry's
drain time falls below ``TIME_TOL``, while the optimized engine snaps the
dust entry to zero and keeps serving everyone else.  The harness verifies
the seeded benchmark points never enter that branch, which is what makes
the bit-identical comparison meaningful.

Do not "improve" this module: its value is that it does not change.
"""

from __future__ import annotations

import numpy as np

from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.sim.metrics import RateSegment, SimulationResult
from repro.sim.rates import max_min_fair_rate_matrix
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

try:  # scipy backend, as in the seed hopcroft_karp module
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching as _scipy_matching
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _csr_matrix = None
    _scipy_matching = None

#: Durations shorter than this (ms) are treated as elapsed (seed value).
TIME_TOL: float = 1e-12

#: Sentinel for "unmatched" in the matching arrays (seed value).
UNMATCHED: int = -1


class ReferenceFluidEngine:
    """The seed revision's fluid engine, kept verbatim.

    Per-event cost is O(n²): every event rebuilds full ``reg_rate`` /
    ``comp_rate`` matrices and re-scans the full residual matrices.  See
    :class:`repro.sim.engine.FluidEngine` for the optimized replacement.
    """

    def __init__(self, demand: np.ndarray, params: SwitchParams) -> None:
        demand = check_demand_matrix(demand)
        if demand.shape[0] != params.n_ports:
            raise ValueError(
                f"demand is {demand.shape[0]}x{demand.shape[1]} but "
                f"params.n_ports={params.n_ports}"
            )
        self.params = params
        self.n = params.n_ports
        self.regular = demand.copy()
        self.composite = np.zeros_like(demand)
        self.demanded = demand > VOLUME_TOL
        self.finish_times = np.full(demand.shape, np.nan)
        self.clock = 0.0
        self.segments: list[RateSegment] = []
        self.served_ocs_direct = 0.0
        self.served_composite = 0.0
        self.served_eps = 0.0
        self.total_demand = float(demand.sum())

    def assign_composite(self, filtered: np.ndarray) -> None:
        filtered = np.asarray(filtered, dtype=np.float64)
        if filtered.shape != self.regular.shape:
            raise ValueError(f"filtered shape {filtered.shape} != demand shape")
        if np.any(filtered > self.regular + 1e-9):
            raise ValueError("filtered demand exceeds remaining regular demand")
        if self.clock > 0:
            raise RuntimeError("assign_composite must run before the first phase")
        self.regular = np.maximum(self.regular - filtered, 0.0)
        self.composite = self.composite + filtered

    def merge_composite_into_regular(
        self, mask: "np.ndarray | None" = None
    ) -> float:
        if mask is None:
            moved = float(self.composite.sum())
            self.regular += self.composite
            self.composite[:] = 0.0
            return moved
        take = np.where(mask, self.composite, 0.0)
        self.regular += take
        np.maximum(self.composite - take, 0.0, out=self.composite)
        return float(take.sum())

    def run_phase(
        self,
        duration: "float | None",
        circuits: "np.ndarray | None" = None,
        composites=(),
        eps_enabled: bool = True,
    ) -> None:
        open_ended = duration is None
        remaining = np.inf if open_ended else float(duration)
        if not open_ended and remaining < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if circuits is not None:
            circuit_rows, circuit_cols = np.nonzero(circuits)
        else:
            circuit_rows = circuit_cols = np.empty(0, dtype=np.int64)

        while remaining > TIME_TOL:
            reg_rate, comp_rate, breakdown = self._current_rates(
                circuit_rows, circuit_cols, composites, eps_enabled
            )
            dt_event = self._next_drain(reg_rate, comp_rate)
            if not np.isfinite(dt_event) and open_ended:
                break  # nothing left to serve
            dt = min(dt_event, remaining)
            if dt <= TIME_TOL:
                # Seed behaviour (the phase-skip dust bug): idle out the
                # rest of the phase even though other entries may still be
                # served at positive rates.
                self.clock += remaining
                break
            self._apply(reg_rate, comp_rate, breakdown, dt)
            remaining -= dt

    def _current_rates(self, circuit_rows, circuit_cols, composites, eps_enabled):
        params = self.params
        n = self.n
        reg_rate = np.zeros_like(self.regular)
        comp_rate = np.zeros_like(self.regular)
        in_cap = np.full(n, params.eps_rate)
        out_cap = np.full(n, params.eps_rate)

        circuit_total = 0.0
        if circuit_rows.size:
            live = self.regular[circuit_rows, circuit_cols] > VOLUME_TOL
            rows, cols = circuit_rows[live], circuit_cols[live]
            reg_rate[rows, cols] = params.ocs_rate
            circuit_total = params.ocs_rate * rows.size

        budget = params.effective_eps_budget
        composite_total = 0.0
        for service in composites:
            if service.kind == "o2m":
                vector = self.composite[service.port, :]
            else:
                vector = self.composite[:, service.port]
            active = vector > VOLUME_TOL
            if service.lane_mask is not None:
                active = active & service.lane_mask
            count = int(active.sum())
            if count == 0:
                continue
            rate = min(budget, params.ocs_rate / count)
            if service.kind == "o2m":
                comp_rate[service.port, active] += rate
                out_cap[active] -= rate
            else:
                comp_rate[active, service.port] += rate
                in_cap[active] -= rate
            composite_total += rate * count
        np.clip(in_cap, 0.0, None, out=in_cap)
        np.clip(out_cap, 0.0, None, out=out_cap)

        eps_total = 0.0
        if eps_enabled:
            eps_active = (self.regular > VOLUME_TOL) & (reg_rate <= 0)
            if eps_active.any():
                eps_rates = max_min_fair_rate_matrix(eps_active, in_cap, out_cap)
                reg_rate += eps_rates
                eps_total = float(eps_rates.sum())
        return reg_rate, comp_rate, (circuit_total, composite_total, eps_total)

    def _next_drain(self, reg_rate: np.ndarray, comp_rate: np.ndarray) -> float:
        dt = np.inf
        served = reg_rate > 0
        if served.any():
            dt = min(dt, float((self.regular[served] / reg_rate[served]).min()))
        served = comp_rate > 0
        if served.any():
            dt = min(dt, float((self.composite[served] / comp_rate[served]).min()))
        return dt

    def _apply(self, reg_rate, comp_rate, breakdown, dt: float) -> None:
        circuit_total, composite_total, eps_total = breakdown
        before = self.regular + self.composite

        self.regular -= reg_rate * dt
        self.composite -= comp_rate * dt
        np.clip(self.regular, 0.0, None, out=self.regular)
        np.clip(self.composite, 0.0, None, out=self.composite)
        self.regular[self.regular <= VOLUME_TOL] = 0.0
        self.composite[self.composite <= VOLUME_TOL] = 0.0

        after = self.regular + self.composite
        newly_done = self.demanded & (before > VOLUME_TOL) & (after <= VOLUME_TOL)
        self.finish_times[newly_done] = self.clock + dt

        self.served_ocs_direct += circuit_total * dt
        self.served_composite += composite_total * dt
        self.served_eps += eps_total * dt

        self.segments.append(
            RateSegment(
                start=self.clock,
                end=self.clock + dt,
                ocs_direct_rate=circuit_total,
                composite_rate=composite_total,
                eps_rate=eps_total,
            )
        )
        self.clock += dt

    def residual_total(self) -> float:
        return float(self.regular.sum() + self.composite.sum())

    def result(
        self, n_configs: int, makespan: float, *, allow_residual: bool = False
    ) -> SimulationResult:
        leftover = self.residual_total()
        if leftover > VOLUME_TOL * max(1, self.n) ** 2 and not allow_residual:
            raise RuntimeError(
                f"simulation ended with {leftover} Mb undelivered; "
                "run a final drain phase first"
            )
        finished = self.finish_times[self.demanded]
        if finished.size == 0:
            completion = 0.0
        elif np.isnan(finished).any():
            completion = float("nan")
        else:
            completion = float(finished.max())
        result = SimulationResult(
            finish_times=self.finish_times,
            completion_time=completion,
            n_configs=n_configs,
            makespan=makespan,
            segments=self.segments,
            served_ocs_direct=self.served_ocs_direct,
            served_composite=self.served_composite,
            served_eps=self.served_eps,
            total_demand=self.total_demand,
            residual=(self.regular + self.composite) if allow_residual else None,
        )
        result.check_conservation(tol=1e-6)
        return result


# ---------------------------------------------------------------------- #
# schedule-path kernels (seed versions)
# ---------------------------------------------------------------------- #


def reference_quick_stuff(demand: np.ndarray) -> np.ndarray:
    """Seed QuickStuff: per-entry numpy-scalar loop in pass 1."""
    stuffed = check_demand_matrix(demand)
    n = stuffed.shape[0]
    row_sums = stuffed.sum(axis=1)
    col_sums = stuffed.sum(axis=0)
    phi = float(max(row_sums.max(), col_sums.max()))
    if phi <= VOLUME_TOL:
        return stuffed

    rows, cols = np.nonzero(stuffed > VOLUME_TOL)
    order = np.argsort(-stuffed[rows, cols], kind="stable")
    for k in order:
        i, j = int(rows[k]), int(cols[k])
        slack = min(phi - row_sums[i], phi - col_sums[j])
        if slack > 0:
            stuffed[i, j] += slack
            row_sums[i] += slack
            col_sums[j] += slack

    row_slack = phi - row_sums
    col_slack = phi - col_sums
    open_rows = [int(i) for i in np.argsort(-row_slack) if row_slack[i] > VOLUME_TOL]
    open_cols = [int(j) for j in np.argsort(-col_slack) if col_slack[j] > VOLUME_TOL]
    ri = ci = 0
    while ri < len(open_rows) and ci < len(open_cols):
        i, j = open_rows[ri], open_cols[ci]
        fill = min(row_slack[i], col_slack[j])
        if fill > VOLUME_TOL:
            stuffed[i, j] += fill
            row_slack[i] -= fill
            col_slack[j] -= fill
        if row_slack[i] <= VOLUME_TOL:
            ri += 1
        if col_slack[j] <= VOLUME_TOL:
            ci += 1

    if max(np.abs(stuffed.sum(axis=1) - phi).max(), np.abs(stuffed.sum(axis=0) - phi).max()) > n * 1e-9 * max(phi, 1.0):
        raise RuntimeError("QuickStuff failed to equalize row/column sums")
    return stuffed


def reference_maximum_matching_mask(mask: np.ndarray) -> "tuple[np.ndarray, int]":
    """Seed matching wrapper: dense mask → scipy COO → CSR → Hopcroft–Karp."""
    mask = np.asarray(mask, dtype=bool)
    graph = _csr_matrix(mask)
    match_left = np.asarray(_scipy_matching(graph, perm_type="column"), dtype=np.int64)
    return match_left, int((match_left != UNMATCHED).sum())


def _reference_big_slice(stuffed: np.ndarray, *, max_probes: "int | None" = 64):
    """Seed BigSlice, using the seed matching wrapper."""
    matrix = np.asarray(stuffed, dtype=np.float64)
    values = np.unique(matrix[matrix > VOLUME_TOL])
    if values.size == 0:
        raise ValueError("big_slice called on an (effectively) empty matrix")
    if max_probes is not None and values.size > max_probes:
        grid = np.linspace(0.0, 1.0, max_probes)
        values = np.unique(np.quantile(values, grid, method="nearest"))

    n = matrix.shape[0]

    def probe(threshold: float) -> "np.ndarray | None":
        match, size = reference_maximum_matching_mask(matrix >= threshold)
        return match if size == n else None

    lo, hi = 0, values.size - 1
    best_match = probe(float(values[lo]))
    if best_match is None:
        raise ValueError(
            "no perfect matching over positive entries; matrix is not stuffed "
            "(row/column sums unequal?)"
        )
    lo += 1
    while lo <= hi:
        mid = (lo + hi) // 2
        match = probe(float(values[mid]))
        if match is not None:
            best_match = match
            lo = mid + 1
        else:
            hi = mid - 1

    rows = np.arange(n)
    threshold = float(matrix[rows, best_match].min())
    permutation = np.zeros((n, n), dtype=np.int8)
    permutation[rows, best_match] = 1
    return threshold, permutation


def reference_solstice_schedule(demand: np.ndarray, params: SwitchParams) -> Schedule:
    """Seed Solstice loop wired to the seed stuffing/matching kernels."""
    demand = check_demand_matrix(demand)
    n = demand.shape[0]
    delta = params.reconfig_delay
    ocs_rate = params.ocs_rate
    eps_rate = params.eps_rate
    cap = n * n

    entries: list[ScheduleEntry] = []
    makespan = 0.0
    leftover = demand.copy()
    stuffed = reference_quick_stuff(demand)

    while len(entries) < cap:
        port_load = max(leftover.sum(axis=1).max(), leftover.sum(axis=0).max())
        if port_load <= VOLUME_TOL:
            break
        if port_load / eps_rate <= makespan:
            break
        if stuffed.max(initial=0.0) <= VOLUME_TOL:
            break
        threshold, permutation = _reference_big_slice(stuffed)
        duration = threshold / ocs_rate
        mask = permutation.astype(bool)
        stuffed[mask] = np.maximum(stuffed[mask] - threshold, 0.0)
        capacity = duration * ocs_rate
        leftover[mask] = np.maximum(leftover[mask] - capacity, 0.0)
        entries.append(ScheduleEntry(permutation=permutation, duration=duration))
        makespan += duration + delta

    return Schedule(entries=tuple(entries), reconfig_delay=delta)


def reference_cp_switch_demand_reduction(
    demand: np.ndarray,
    fanout_threshold: int,
    volume_threshold: float,
):
    """Seed Algorithm 1 with the numpy-scalar greedy both-qualify loop.

    Returns a :class:`repro.core.reduction.ReducedDemand` (imported lazily
    to avoid a core ↔ sim import cycle).
    """
    from repro.core.reduction import ReducedDemand
    from repro.utils.validation import check_nonnegative

    demand = check_demand_matrix(demand)
    if fanout_threshold < 1:
        raise ValueError(f"fanout_threshold (Rt) must be >= 1, got {fanout_threshold}")
    check_nonnegative("volume_threshold", volume_threshold)
    n = demand.shape[0]

    low = demand.copy()
    low[low > volume_threshold] = 0.0

    nonzero = low > VOLUME_TOL
    row_qualifies = nonzero.sum(axis=1) >= fanout_threshold
    col_qualifies = nonzero.sum(axis=0) >= fanout_threshold

    reduced = np.zeros((n + 1, n + 1), dtype=np.float64)
    filtered = np.zeros_like(demand)
    o2m_mask = np.zeros((n, n), dtype=bool)
    m2o_mask = np.zeros((n, n), dtype=bool)
    o2m_loads = reduced[:n, n]
    m2o_loads = reduced[n, :n]

    only_rows = nonzero & row_qualifies[:, None] & ~col_qualifies[None, :]
    filtered[only_rows] = demand[only_rows]
    np.add.at(o2m_loads, np.nonzero(only_rows)[0], demand[only_rows])
    o2m_mask |= only_rows

    only_cols = nonzero & ~row_qualifies[:, None] & col_qualifies[None, :]
    filtered[only_cols] = demand[only_cols]
    np.add.at(m2o_loads, np.nonzero(only_cols)[1], demand[only_cols])
    m2o_mask |= only_cols

    both = nonzero & row_qualifies[:, None] & col_qualifies[None, :]
    for i, j in zip(*np.nonzero(both)):
        value = demand[i, j]
        filtered[i, j] = value
        if o2m_loads[i] <= m2o_loads[j]:
            o2m_loads[i] += value
            o2m_mask[i, j] = True
        else:
            m2o_loads[j] += value
            m2o_mask[i, j] = True

    reduced[:n, :n] = demand - filtered

    return ReducedDemand(
        reduced=reduced,
        filtered=filtered,
        o2m_assignment=o2m_mask,
        m2o_assignment=m2o_mask,
        volume_threshold=float(volume_threshold),
        fanout_threshold=int(fanout_threshold),
    )
