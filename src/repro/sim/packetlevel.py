"""Packet-level EPS crossbar model — cross-check for the fluid abstraction.

The main simulator models the EPS as a fluid max-min fair allocator.  Real
electronic packet switches are slotted crossbars with per-receiver VOQs and
an iterative arbiter (iSLIP and friends): in each time slot every input
forwards at most one cell and every output accepts at most one cell, with
round-robin pointers providing fairness.  This module implements that
model, and the test suite checks that per-port drain times of the fluid
model match the slotted model up to slot-quantization — evidence that the
fluid EPS is a faithful abstraction rather than a convenient fiction.

The arbiter is an iSLIP-style iterative grant/accept scheme:

1. *Request*: every input with backlog requests all outputs it has cells
   for.
2. *Grant*: each output grants the requesting input closest to its
   round-robin pointer.
3. *Accept*: each input accepts the granting output closest to its pointer.
4. Repeat on unmatched ports for a fixed number of iterations.

Pointers advance only on accepted grants of the first iteration, the
classic iSLIP de-synchronization rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.switch.params import SwitchParams
from repro.switch.voq import VirtualOutputQueues
from repro.utils.validation import VOLUME_TOL, check_positive


@dataclass
class PacketLevelResult:
    """Outcome of draining a VOQ matrix through the slotted crossbar."""

    finish_times: np.ndarray  # ms; nan where no demand
    completion_time: float  # ms
    slots_used: int
    cells_transferred: int
    ocs_volume: float = 0.0  # Mb moved by circuits (hybrid model only)
    eps_volume: float = 0.0  # Mb moved by the crossbar


class PacketLevelEps:
    """Slotted VOQ crossbar with an iSLIP-style arbiter.

    Parameters
    ----------
    n_ports:
        Crossbar radix.
    eps_rate:
        Port rate ``Ce`` (Mb/ms); with ``slot_duration`` this sets the cell
        size ``Ce * slot_duration`` (Mb).
    slot_duration:
        Slot length (ms).  Smaller slots approximate the fluid model more
        closely at higher simulation cost.
    arbiter_iterations:
        Grant/accept rounds per slot (iSLIP converges to a maximal matching
        in O(log n) rounds; 4 is the classic hardware choice).
    """

    def __init__(
        self,
        n_ports: int,
        eps_rate: float = 10.0,
        slot_duration: float = 0.01,
        arbiter_iterations: int = 4,
    ) -> None:
        if n_ports < 2:
            raise ValueError(f"n_ports must be >= 2, got {n_ports}")
        check_positive("eps_rate", eps_rate)
        check_positive("slot_duration", slot_duration)
        if arbiter_iterations < 1:
            raise ValueError(f"arbiter_iterations must be >= 1, got {arbiter_iterations}")
        self.n = int(n_ports)
        self.eps_rate = float(eps_rate)
        self.slot_duration = float(slot_duration)
        self.cell_volume = self.eps_rate * self.slot_duration
        self.arbiter_iterations = int(arbiter_iterations)
        self._grant_pointer = np.zeros(self.n, dtype=np.int64)  # per output
        self._accept_pointer = np.zeros(self.n, dtype=np.int64)  # per input

    # ------------------------------------------------------------------ #

    def arbitrate(self, backlog: np.ndarray) -> "list[tuple[int, int]]":
        """One slot's matching decision for the given VOQ backlog matrix."""
        requests = backlog > VOLUME_TOL
        matched_inputs = np.zeros(self.n, dtype=bool)
        matched_outputs = np.zeros(self.n, dtype=bool)
        matching: list[tuple[int, int]] = []
        for iteration in range(self.arbiter_iterations):
            grants: dict[int, int] = {}  # output -> granted input
            for output in range(self.n):
                if matched_outputs[output]:
                    continue
                requesting = [
                    inp
                    for inp in self._rotation(self._grant_pointer[output])
                    if not matched_inputs[inp] and requests[inp, output]
                ]
                if requesting:
                    grants[output] = requesting[0]
            accepts: dict[int, int] = {}  # input -> accepted output
            granted_by_input: dict[int, list[int]] = {}
            for output, inp in grants.items():
                granted_by_input.setdefault(inp, []).append(output)
            for inp, outputs in granted_by_input.items():
                ordered = [
                    out for out in self._rotation(self._accept_pointer[inp]) if out in outputs
                ]
                accepts[inp] = ordered[0]
            for inp, output in accepts.items():
                matched_inputs[inp] = True
                matched_outputs[output] = True
                matching.append((inp, output))
                if iteration == 0:
                    # iSLIP pointer update: one past the matched partner,
                    # first iteration only (de-synchronization).
                    self._grant_pointer[output] = (inp + 1) % self.n
                    self._accept_pointer[inp] = (output + 1) % self.n
            if not accepts:
                break
        return matching

    def _rotation(self, start: int) -> "list[int]":
        start = int(start) % self.n
        return list(range(start, self.n)) + list(range(0, start))

    # ------------------------------------------------------------------ #

    def drain(self, demand: np.ndarray, max_slots: int = 1_000_000) -> PacketLevelResult:
        """Run slots until every VOQ is empty; return per-entry finish times."""
        voqs = VirtualOutputQueues(self.n, initial=np.asarray(demand, dtype=np.float64))
        finish = np.full((self.n, self.n), np.nan)
        demanded = np.asarray(demand) > VOLUME_TOL
        cells = 0
        slot = 0
        while not voqs.is_empty():
            if slot >= max_slots:
                raise RuntimeError(f"packet-level drain exceeded {max_slots} slots")
            matching = self.arbitrate(voqs.occupancy)
            for inp, output in matching:
                voqs.serve(inp, output, self.cell_volume)
                cells += 1
                if voqs.occupancy[inp, output] <= VOLUME_TOL and demanded[inp, output]:
                    if np.isnan(finish[inp, output]):
                        finish[inp, output] = (slot + 1) * self.slot_duration
            slot += 1
        voqs.check_conservation()
        finished = finish[demanded]
        completion = float(np.nanmax(finished)) if finished.size else 0.0
        return PacketLevelResult(
            finish_times=finish,
            completion_time=completion,
            slots_used=slot,
            cells_transferred=cells,
        )


class PacketLevelHybrid:
    """Slotted execution of a full h-Switch schedule — the pipeline-level
    cross-check.

    Extends the EPS crossbar model with the OCS plane: the schedule's
    configurations are quantized to slots; during a configuration's slots
    each live circuit moves one OCS cell (``Co * slot_duration`` Mb) per
    slot, during reconfiguration slots the OCS idles, and the EPS crossbar
    arbitrates every slot over the VOQs no circuit is serving.  After the
    schedule, EPS-only slots drain the leftovers.

    This validates the *composed* fluid model (phases, exclusion of
    circuit-served VOQs from the EPS, reconfiguration accounting), not
    just the EPS allocator; agreement is up to slot quantization.
    """

    def __init__(
        self,
        params: "SwitchParams",
        slot_duration: float = 0.005,
        arbiter_iterations: int = 4,
    ) -> None:
        check_positive("slot_duration", slot_duration)
        self.params = params
        self.slot_duration = float(slot_duration)
        self.eps = PacketLevelEps(
            params.n_ports,
            eps_rate=params.eps_rate,
            slot_duration=slot_duration,
            arbiter_iterations=arbiter_iterations,
        )
        self.ocs_cell = params.ocs_rate * self.slot_duration

    def _slots(self, duration: float) -> int:
        return int(np.ceil(duration / self.slot_duration - 1e-9))

    def execute(self, demand: np.ndarray, schedule, max_slots: int = 1_000_000) -> PacketLevelResult:
        """Run ``schedule`` (a :class:`repro.hybrid.schedule.Schedule`)."""
        voqs = VirtualOutputQueues(self.params.n_ports, initial=np.asarray(demand, dtype=np.float64))
        n = self.params.n_ports
        finish = np.full((n, n), np.nan)
        demanded = np.asarray(demand) > VOLUME_TOL
        slot = 0
        cells = 0
        ocs_volume = 0.0
        eps_volume = 0.0

        def record_finishes() -> None:
            done = demanded & (voqs.occupancy <= VOLUME_TOL) & np.isnan(finish)
            finish[done] = (slot + 1) * self.slot_duration

        def eps_slot(blocked: "set[tuple[int, int]]") -> None:
            nonlocal cells, eps_volume
            backlog = voqs.occupancy.copy()
            for (i, j) in blocked:
                backlog[i, j] = 0.0
            for inp, output in self.eps.arbitrate(backlog):
                moved = voqs.serve(inp, output, self.eps.cell_volume)
                eps_volume += moved
                cells += 1

        for entry in schedule:
            for _ in range(self._slots(schedule.reconfig_delay)):
                if slot >= max_slots:
                    raise RuntimeError("packet-level execution exceeded max_slots")
                eps_slot(set())
                record_finishes()
                slot += 1
            circuits = entry.circuits
            for _ in range(self._slots(entry.duration)):
                if slot >= max_slots:
                    raise RuntimeError("packet-level execution exceeded max_slots")
                blocked = set()
                for i, j in circuits:
                    moved = voqs.serve(i, j, self.ocs_cell)
                    ocs_volume += moved
                    if moved > 0:
                        blocked.add((i, j))
                eps_slot(blocked)
                record_finishes()
                slot += 1
        while not voqs.is_empty():
            if slot >= max_slots:
                raise RuntimeError("packet-level execution exceeded max_slots")
            eps_slot(set())
            record_finishes()
            slot += 1

        voqs.check_conservation()
        finished = finish[demanded]
        completion = float(np.nanmax(finished)) if finished.size else 0.0
        return PacketLevelResult(
            finish_times=finish,
            completion_time=completion,
            slots_used=slot,
            cells_transferred=cells,
            ocs_volume=ocs_volume,
            eps_volume=eps_volume,
        )
