"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalizes it through :func:`ensure_rng`.  Experiments that average over
many random demand matrices derive independent per-trial generators with
:func:`spawn_rngs` so results are reproducible regardless of evaluation
order.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(rng: "int | np.random.Generator | np.random.SeedSequence | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an already-constructed
        generator (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(seed: "int | np.random.SeedSequence | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so trial *i* sees the same
    stream whether trials run sequentially, in parallel, or individually.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
