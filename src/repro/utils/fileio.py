"""Atomic file writes shared by persistence layers.

A write that is interrupted (crash, SIGKILL, full disk) must never leave a
half-written file where a valid one used to be.  Every JSON artifact in the
library — schedules, results, run journals — goes through
:func:`atomic_write_text`: the payload is written to a temporary file in
the *same directory* (so the final rename cannot cross filesystems),
flushed and fsynced, and then moved over the destination with
:func:`os.replace`, which POSIX guarantees to be atomic.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (tmp file + ``os.replace``).

    The destination either keeps its old content or holds the complete new
    content — never a torn mixture — even across power loss, because the
    temporary file is fsynced before the rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(payload: dict, path: "str | Path", *, indent: "int | None" = 2) -> Path:
    """Atomically write ``payload`` as JSON (see :func:`atomic_write_text`)."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
