"""Unit conventions used throughout the library.

The library works in the paper's natural magnitudes:

* **demand volume** in megabits (Mb),
* **link rate** in Mb/ms — numerically identical to Gbps
  (1 Gbps = 10^9 b/s = 10^6 b/ms = 1 Mb/ms),
* **time** in milliseconds (ms).

With these units the paper's constants read off directly: an EPS port of
``Ce = 10 Gbps`` is ``10.0`` Mb/ms, the fast-OCS reconfiguration penalty of
20 microseconds is ``0.02`` ms, and the slow-OCS penalty of 20 ms is
``20.0``.

Only conversion helpers live here; all other modules assume the canonical
units above and never convert internally.
"""

from __future__ import annotations

#: Multiplicative tag for rates expressed in Gbps (== Mb/ms, the canonical
#: rate unit). ``10 * GBPS`` reads as documentation; the value is 1.0.
GBPS: float = 1.0

#: One millisecond, the canonical time unit.
MILLISECONDS: float = 1.0

#: One microsecond expressed in canonical time units.
MICROSECONDS: float = 1e-3

#: One second expressed in canonical time units.
SECONDS: float = 1e3


def gbps_to_mb_per_ms(rate_gbps: float) -> float:
    """Convert a rate in Gbps to Mb/ms (a numeric identity, kept explicit)."""
    return float(rate_gbps)


def mb_per_ms_to_gbps(rate: float) -> float:
    """Convert a rate in Mb/ms to Gbps (a numeric identity, kept explicit)."""
    return float(rate)


def us_to_ms(value_us: float) -> float:
    """Convert microseconds to the canonical millisecond unit."""
    return float(value_us) * MICROSECONDS


def ms_to_us(value_ms: float) -> float:
    """Convert canonical milliseconds to microseconds."""
    return float(value_ms) / MICROSECONDS
