"""Shared utilities: unit conversions, RNG handling, input validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.units import (
    GBPS,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
    gbps_to_mb_per_ms,
    mb_per_ms_to_gbps,
    ms_to_us,
    us_to_ms,
)
from repro.utils.validation import (
    check_demand_matrix,
    check_nonnegative,
    check_permutation,
    check_positive,
)

__all__ = [
    "GBPS",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
    "check_demand_matrix",
    "check_nonnegative",
    "check_permutation",
    "check_positive",
    "ensure_rng",
    "gbps_to_mb_per_ms",
    "mb_per_ms_to_gbps",
    "ms_to_us",
    "spawn_rngs",
    "us_to_ms",
]
