"""Input validation helpers shared by the scheduling and simulation layers.

All validators raise :class:`ValueError` (never assert) so that misuse of
the public API fails loudly in optimized runs too.
"""

from __future__ import annotations

import numpy as np

#: Absolute tolerance for "is this demand fully drained" style comparisons,
#: in Mb.  One kilobit of residual demand is far below anything the paper's
#: workloads can distinguish.
VOLUME_TOL: float = 1e-9


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, non-negative scalar."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value}")
    return value


def check_demand_matrix(demand: np.ndarray, *, square: bool = True) -> np.ndarray:
    """Validate and canonicalize a demand matrix.

    Returns a C-contiguous float64 copy so callers may mutate it freely.

    Parameters
    ----------
    demand:
        2-D array of non-negative, finite demand volumes (Mb).
    square:
        Require the matrix to be square (the switch model is n×n).
    """
    arr = np.asarray(demand, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"demand matrix must be 2-D, got shape {arr.shape}")
    if square and arr.shape[0] != arr.shape[1]:
        raise ValueError(f"demand matrix must be square, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("demand matrix must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError("demand matrix contains non-finite entries")
    if np.any(arr < 0):
        raise ValueError("demand matrix contains negative entries")
    # np.array copies exactly once; the previous ascontiguousarray().copy()
    # chain copied twice whenever the input was not already a C-contiguous
    # float64 array.
    return np.array(arr, dtype=np.float64, order="C")


def check_permutation(perm: np.ndarray, *, partial: bool = True) -> np.ndarray:
    """Validate a (possibly partial) permutation matrix.

    A permutation matrix here is a 0/1 square matrix with at most one 1 per
    row and per column; with ``partial=False`` exactly one per row/column is
    required.
    """
    arr = np.asarray(perm)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"permutation must be square 2-D, got shape {arr.shape}")
    if arr.dtype == np.bool_ or np.issubdtype(arr.dtype, np.integer):
        # Integral entries are 0/1 iff min and max are — two cheap
        # reductions instead of np.unique + isin on the full matrix.
        if arr.size and (arr.min() < 0 or arr.max() > 1):
            raise ValueError("permutation entries must be 0 or 1")
    else:
        values = np.unique(arr)
        if not np.all(np.isin(values, (0, 1))):
            raise ValueError("permutation entries must be 0 or 1")
    rows = np.count_nonzero(arr, axis=1)
    cols = np.count_nonzero(arr, axis=0)
    if partial:
        if np.any(rows > 1) or np.any(cols > 1):
            raise ValueError("partial permutation has a row or column with >1 entry")
    else:
        if np.any(rows != 1) or np.any(cols != 1):
            raise ValueError("full permutation must have exactly one entry per row/column")
    return np.ascontiguousarray(arr, dtype=np.int8)
