"""Figure 10 — Intensive Typical DCN and One-to-Many/Many-to-One Demand:
OCS Utilization (Eclipse-based).

Paper result: the same utilization-improvement trend as Figure 8 holds
under the 4x-density background — the cp-Switch scheduler is stable when
stressed.
"""

from __future__ import annotations

from benchmarks.common import emit, radices, trials
from repro.analysis.figures import figure10

HEADERS = ["radix", "h OCS fraction", "cp OCS fraction", "cp/h"]


def _rows(ocs: str):
    rows = []
    config_rows = []
    for point in figure10(ocs, radices=radices(), n_trials=trials()):
        n, res = point.n_ports, point.result
        rows.append(
            [
                n,
                res.h_ocs_fraction.mean,
                res.cp_ocs_fraction.mean,
                f"{res.utilization_gain:.2f}x",
            ]
        )
        config_rows.append([n, res.h_configs.mean, res.cp_configs.mean])
    return rows, config_rows


def test_fig10a_utilization_fast_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig10a",
        "Figure 10(a) - OCS utilization, intensive DCN + skewed demand, Fast OCS (Eclipse, 1 ms)",
        HEADERS,
        rows,
    )
    emit(
        "fig10c_fast",
        "Figure 10(c) - OCS configurations, intensive DCN + skewed, Fast OCS (Eclipse)",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] >= row[1] * 0.98, "cp OCS fraction must not materially regress"


def test_fig10b_utilization_slow_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig10b",
        "Figure 10(b) - OCS utilization, intensive DCN + skewed demand, Slow OCS (Eclipse, 100 ms)",
        HEADERS,
        rows,
    )
    emit(
        "fig10c_slow",
        "Figure 10(c) - OCS configurations, intensive DCN + skewed, Slow OCS (Eclipse)",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] >= row[1] * 0.98
