"""Ablation — the EPS reservation budget ``Ce*`` (§2.3 "EPS Reservation").

Composite paths commandeer the EPS links of every endpoint they serve,
which "may adversely impact short and delay-sensitive flows that want to
concurrently use these EPS links".  The paper's remedy is a bandwidth
budget ``Ce* <= Ce`` enforced by traffic shaping.  This bench sweeps
``Ce*`` and shows the tradeoff directly:

* small ``Ce*`` protects the background EPS traffic (its coflow
  completion approaches the no-composite case) but throttles the
  composite paths, stretching the skewed coflows;
* ``Ce* = Ce`` (the evaluation default) is fastest for the skewed
  coflows at the cost of background latency on the touched links.
"""

from __future__ import annotations

from benchmarks.common import BENCH_SEED, emit, params_for, trials
from repro.analysis.aggregate import aggregate
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp
from repro.utils.rng import spawn_rngs
from repro.workloads.combined import CombinedWorkload

RADIX = 32
# Ce = 10 Mb/ms.  At radix 32 the composite paths serve ~24 endpoints, so
# the OCS leg caps the per-endpoint rate at Co/24 ~ 4.2 Mb/ms — budgets
# below that bind (throttling the composite paths); budgets above it only
# shrink the reservation.
BUDGETS = (0.5, 1.0, 2.0, 4.0, 10.0)


def _rows(ocs: str):
    base_params = params_for(ocs, RADIX)
    workload = CombinedWorkload.typical(base_params)
    scheduler = CpSwitchScheduler(SolsticeScheduler())
    specs = [workload.generate(RADIX, rng) for rng in spawn_rngs(BENCH_SEED, trials())]

    rows = []
    for budget in BUDGETS:
        params = base_params.with_budget(budget)
        skew_ccts, background_ccts, totals = [], [], []
        for spec in specs:
            schedule = scheduler.schedule(spec.demand, params)
            result = simulate_cp(spec.demand, schedule, params)
            skew_ccts.append(result.coflow_completion(spec.skewed_mask))
            background_ccts.append(result.coflow_completion(spec.background_mask))
            totals.append(result.completion_time)
        rows.append(
            [
                budget,
                aggregate(skew_ccts).mean,
                aggregate(background_ccts).mean,
                aggregate(totals).mean,
            ]
        )
    return rows


def test_ablation_eps_budget_fast(benchmark):
    rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "ablation_budget",
        f"Ablation - EPS reservation budget Ce* (radix {RADIX}, typical, Fast OCS, Solstice)",
        ["Ce* (Mb/ms)", "skewed CCT (ms)", "background CCT (ms)", "total (ms)"],
        rows,
    )
    # Throttling the composite paths must not *speed up* the skewed coflows.
    skew_by_budget = [row[1] for row in rows]
    assert skew_by_budget[0] >= skew_by_budget[-1] * 0.98
