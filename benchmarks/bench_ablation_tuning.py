"""Ablation — the (α, β) filter-tuning heuristic (§4 "Tuning Heuristic").

The paper sets ``Bt = α·δ·Co`` (α = 1 fast / 0.1 slow) and ``Rt = β·n``
(β = 0.7) by intuition, not exhaustive search, and leaves tuning to future
work.  This bench sweeps each knob around the paper's point on the typical
workload and reports how cp-Switch completion time, configuration count,
and the volume routed to composite paths respond:

* raising β (stricter fan-out) shrinks the filtered volume until the
  composite paths sit idle and cp degenerates to h;
* raising α (larger Bt) admits bigger entries whose dedicated circuits
  would have amortized δ on their own, wasting composite-path time.
"""

from __future__ import annotations

from benchmarks.common import emit, run_point
from repro.core.config import FilterConfig
from repro.workloads.combined import CombinedWorkload

RADIX = 64
ALPHAS = (0.25, 0.5, 1.0, 2.0, 4.0)
BETAS = (0.5, 0.6, 0.7, 0.8, 0.9)


def _alpha_rows():
    rows = []
    for alpha in ALPHAS:
        res = run_point(
            lambda p: CombinedWorkload.typical(p),
            "solstice",
            "fast",
            RADIX,
            filter_config=FilterConfig(alpha=alpha),
        )
        rows.append(
            [
                alpha,
                res.cp_completion_total.mean,
                res.cp_completion_o2m.mean,
                res.cp_configs.mean,
                res.h_completion_total.mean,
            ]
        )
    return rows


def _beta_rows():
    rows = []
    for beta in BETAS:
        res = run_point(
            lambda p: CombinedWorkload.typical(p),
            "solstice",
            "fast",
            RADIX,
            filter_config=FilterConfig(beta=beta),
        )
        rows.append(
            [
                beta,
                res.cp_completion_total.mean,
                res.cp_completion_o2m.mean,
                res.cp_configs.mean,
                res.h_completion_total.mean,
            ]
        )
    return rows


def test_ablation_alpha_sweep(benchmark):
    rows = benchmark.pedantic(_alpha_rows, rounds=1, iterations=1)
    emit(
        "ablation_alpha",
        f"Ablation - Bt factor alpha sweep (beta=0.7, radix {RADIX}, typical, Fast OCS, Solstice)",
        ["alpha", "cp total", "cp o2m", "cp configs", "h total (ref)"],
        rows,
    )


def test_ablation_beta_sweep(benchmark):
    rows = benchmark.pedantic(_beta_rows, rounds=1, iterations=1)
    emit(
        "ablation_beta",
        f"Ablation - Rt factor beta sweep (alpha=1, radix {RADIX}, typical, Fast OCS, Solstice)",
        ["beta", "cp total", "cp o2m", "cp configs", "h total (ref)"],
        rows,
    )
    # At beta far above the generated fan-out the filter captures nothing,
    # so cp must degenerate towards the h-Switch baseline.
    strictest = rows[-1]
    assert strictest[1] <= strictest[4] * 1.10
