"""Table 2 — h-Switch vs cp-Switch scheduling run-times using Eclipse.

Same layout as Table 1 with the Eclipse sub-scheduler; see
bench_table1.py for the reading guide.
"""

from __future__ import annotations

from benchmarks.bench_table1 import HEADERS, _rows
from benchmarks.common import emit


def test_table2_eclipse_runtimes(benchmark):
    rows = benchmark.pedantic(_rows, args=("eclipse",), rounds=1, iterations=1)
    emit(
        "table2",
        "Table 2 - scheduling run-times (ms), Eclipse: h-Switch vs cp-Switch",
        HEADERS,
        rows,
    )
    for row in rows:
        assert all(float(part) > 0 for part in row[2].split(", "))
