"""Ablation — scheduling under imperfect demand estimates.

The paper (and Solstice/Eclipse before it) assumes the scheduler sees the
exact VOQ occupancies.  This study perturbs the estimate the scheduler
works from (noise / staleness / missed entries) while executing against
the true demand, and asks whether the cp-Switch's advantage survives —
i.e. whether the composite-path idea depends on demand-knowledge
precision.  Expected answer (and the headline of the table): it does not —
filtering thresholds are coarse (an entry merely needs to stay under
``Bt`` and its row/column over ``Rt``), so moderate estimation error
leaves the reduction nearly unchanged.
"""

from __future__ import annotations

from benchmarks.common import BENCH_SEED, emit, params_for, trials
from repro.analysis.aggregate import aggregate
from repro.analysis.robustness import robustness_trial
from repro.hybrid.solstice import SolsticeScheduler
from repro.utils.rng import spawn_rngs
from repro.workloads.combined import CombinedWorkload

RADIX = 64
SCENARIOS = (
    ("exact", dict()),
    ("noise 20%", dict(noise=0.2)),
    ("stale 30%", dict(staleness=0.3)),
    ("miss 10%", dict(miss_rate=0.1)),
    ("all of the above", dict(noise=0.2, staleness=0.3, miss_rate=0.1)),
)


def _rows(ocs: str):
    params = params_for(ocs, RADIX)
    workload = CombinedWorkload.typical(params)
    scheduler = SolsticeScheduler()
    specs = [workload.generate(RADIX, rng) for rng in spawn_rngs(BENCH_SEED, trials())]

    rows = []
    for label, kwargs in SCENARIOS:
        h_totals, cp_totals, h_skews, cp_skews = [], [], [], []
        for index, spec in enumerate(specs):
            import numpy as np

            rng = np.random.default_rng(BENCH_SEED * 31 + index)
            h_result, cp_result = robustness_trial(
                spec.demand, scheduler, params, rng, **kwargs
            )
            h_totals.append(h_result.completion_time)
            cp_totals.append(cp_result.completion_time)
            h_skews.append(h_result.coflow_completion(spec.skewed_mask))
            cp_skews.append(cp_result.coflow_completion(spec.skewed_mask))
        rows.append(
            [
                label,
                aggregate(h_totals).mean,
                aggregate(cp_totals).mean,
                aggregate(h_skews).mean,
                aggregate(cp_skews).mean,
            ]
        )
    return rows


def test_ablation_robustness_fast(benchmark):
    rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "ablation_robustness",
        f"Ablation - demand-estimate quality (radix {RADIX}, typical, Fast OCS, Solstice)",
        ["estimate", "h total (ms)", "cp total (ms)", "h skewed (ms)", "cp skewed (ms)"],
        rows,
    )
    # The cp skewed-coflow advantage must survive every scenario.
    for row in rows:
        assert row[4] < row[3], f"cp lost its skewed advantage under {row[0]!r}"
