"""Figure 11 — Typical DCN Traffic and Increasing One-to-Many/Many-to-One
Demand (Solstice-based).

The number of skewed senders/receivers k grows from 1 to 6.  Paper result:
the cp-Switch advantage shrinks as the two composite paths saturate; at
radix 128 with more than ~4 skewed ports per direction cp-Switch can end up
*slower* than h-Switch — the motivation for the k-composite-paths extension
(see bench_ablation_multipath).
"""

from __future__ import annotations

from benchmarks.common import emit, pct_gain, radices, trials
from repro.analysis.figures import figure11

SKEW_COUNTS = (1, 2, 3, 4, 5, 6)

HEADERS = [
    "radix",
    "k",
    "h total",
    "cp total",
    "total gain",
    "h skewed",
    "cp skewed",
    "skew gain",
]


def _rows(ocs: str):
    rows = []
    for point in figure11(ocs, radices=radices(), skew_counts=SKEW_COUNTS, n_trials=trials()):
        n, k, res = point.n_ports, point.skewed_ports, point.result
        h_skew = max(res.h_completion_o2m.mean, res.h_completion_m2o.mean)
        cp_skew = max(res.cp_completion_o2m.mean, res.cp_completion_m2o.mean)
        rows.append(
            [
                n,
                k,
                res.h_completion_total.mean,
                res.cp_completion_total.mean,
                f"{pct_gain(res.h_completion_total.mean, res.cp_completion_total.mean):.0f}%",
                h_skew,
                cp_skew,
                f"{pct_gain(h_skew, cp_skew):.0f}%",
            ]
        )
    return rows


def test_fig11ab_fast_ocs(benchmark):
    rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig11_fast",
        "Figure 11(a,b) - completion time (ms) vs skewed port count k, Fast OCS (Solstice)",
        HEADERS,
        rows,
    )
    # The composite-path advantage on the skewed subset shrinks with k.
    for n in radices():
        subset = [row for row in rows if row[0] == n]
        first_gain = 1 - subset[0][6] / subset[0][5]
        last_gain = 1 - subset[-1][6] / subset[-1][5]
        assert first_gain >= last_gain - 0.15, (
            f"radix {n}: skew gain should not grow as composite paths saturate"
        )


def test_fig11cd_slow_ocs(benchmark):
    rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig11_slow",
        "Figure 11(c,d) - completion time (ms) vs skewed port count k, Slow OCS (Solstice)",
        HEADERS,
        rows,
    )
