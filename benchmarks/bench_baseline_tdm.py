"""Baseline ladder — TDM strawman vs Solstice vs cp-Switch (Figure 1).

The paper's opening figure contrasts naive TDM serialization of a
one-to-many coflow (Figure 1(a)) with the composite-path service
(Figure 1(b)).  This bench quantifies the whole ladder on the §3.2
workload: how much the *scheduler* buys over naive TDM, and how much the
*architecture* (composite paths) buys on top — for both, wrapping the same
sub-scheduler per Algorithm 4's genericity.
"""

from __future__ import annotations

from benchmarks.common import BENCH_SEED, emit, params_for, trials
from repro.analysis.aggregate import aggregate
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.hybrid.tdm import TdmScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.utils.rng import spawn_rngs
from repro.workloads.skewed import SkewedWorkload

RADIX = 64


def _rows(ocs: str):
    params = params_for(ocs, RADIX)
    workload = SkewedWorkload.for_params(params)
    specs = [workload.generate(RADIX, rng) for rng in spawn_rngs(BENCH_SEED, trials())]

    ladder = [
        ("TDM h-Switch (Fig 1a)", TdmScheduler(adaptive=True), False),
        ("Solstice h-Switch", SolsticeScheduler(), False),
        ("TDM cp-Switch", TdmScheduler(adaptive=True), True),
        ("Solstice cp-Switch (Fig 1b)", SolsticeScheduler(), True),
    ]
    rows = []
    for label, scheduler, composite in ladder:
        totals, configs = [], []
        for spec in specs:
            if composite:
                cp_schedule = CpSwitchScheduler(scheduler).schedule(spec.demand, params)
                result = simulate_cp(spec.demand, cp_schedule, params)
            else:
                schedule = scheduler.schedule(spec.demand, params)
                result = simulate_hybrid(spec.demand, schedule, params)
            totals.append(result.completion_time)
            configs.append(result.n_configs)
        rows.append([label, aggregate(totals).mean, aggregate(configs).mean])
    return rows


def test_baseline_ladder_fast(benchmark):
    rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "baseline_tdm",
        f"Baseline ladder - skewed demand, radix {RADIX}, Fast OCS",
        ["system", "completion (ms)", "OCS configurations"],
        rows,
    )
    tdm_h, solstice_h, tdm_cp, solstice_cp = (row[1] for row in rows)
    # Architecture dominates scheduling for skewed traffic: BOTH cp
    # variants beat BOTH h variants (and typically coincide — the whole
    # coflow rides one composite configuration either way, which is
    # Algorithm 4's genericity claim made concrete).  Note the h-Switch
    # ordering itself is workload-dependent: on pure skewed demand
    # adaptive TDM can edge out Solstice, whose stuffing pads heavily.
    assert max(tdm_cp, solstice_cp) < min(tdm_h, solstice_h)
    # Scheduling intelligence still shows in configuration counts.
    tdm_h_cfg, solstice_h_cfg = rows[0][2], rows[1][2]
    assert solstice_h_cfg <= tdm_h_cfg + 1e-9
