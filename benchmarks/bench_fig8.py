"""Figure 8 — Typical DCN with One-to-Many/Many-to-One Demand:
OCS Utilization (Eclipse-based) and OCS configurations.

Paper result: cp-Switch improves the fraction of demand served by the OCS
within the window for every radix (up to severalfold), with Eclipse's
configuration count roughly radix-independent.
"""

from __future__ import annotations

from benchmarks.common import emit, radices, trials
from repro.analysis.figures import figure8

HEADERS = ["radix", "h OCS fraction", "cp OCS fraction", "cp/h"]


def _rows(ocs: str):
    rows = []
    config_rows = []
    for point in figure8(ocs, radices=radices(), n_trials=trials()):
        n, res = point.n_ports, point.result
        rows.append(
            [
                n,
                res.h_ocs_fraction.mean,
                res.cp_ocs_fraction.mean,
                f"{res.utilization_gain:.2f}x",
            ]
        )
        config_rows.append([n, res.h_configs.mean, res.cp_configs.mean])
    return rows, config_rows


def test_fig8a_utilization_fast_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig8a",
        "Figure 8(a) - OCS utilization, typical DCN + skewed demand, Fast OCS (Eclipse, 1 ms)",
        HEADERS,
        rows,
    )
    emit(
        "fig8c_fast",
        "Figure 8(c) - OCS configurations, typical DCN + skewed, Fast OCS (Eclipse)",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] >= row[1], "cp OCS fraction must not regress"


def test_fig8b_utilization_slow_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig8b",
        "Figure 8(b) - OCS utilization, typical DCN + skewed demand, Slow OCS (Eclipse, 100 ms)",
        HEADERS,
        rows,
    )
    emit(
        "fig8c_slow",
        "Figure 8(c) - OCS configurations, typical DCN + skewed, Slow OCS (Eclipse)",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] >= row[1]
