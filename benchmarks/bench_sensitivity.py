"""Sensitivity — where the composite-path benefit comes from.

The paper evaluates one operating point per OCS class (Co/Ce = 10,
δ ∈ {20 µs, 20 ms}).  This study sweeps the two physical knobs on the
§3.2 skewed workload and maps the benefit region:

* **rate ratio Co/Ce** — composite paths convert optical bandwidth into
  parallel electronic deliveries, worth it only while the fan-out's
  aggregate EPS rate covers the optical rate (fan-out ≥ Co/Ce).  As the
  ratio grows past the fan-out the composite path becomes EPS-bound and
  the advantage shrinks;
* **reconfiguration penalty δ** — an inverted U as well.  The h-Switch
  pays δ per destination and the cp-Switch once, so the gain first grows
  with δ; but once δ exceeds the time the EPS needs for the whole coflow,
  the right answer is to skip the OCS entirely — the h-Switch (whose
  Solstice stops scheduling circuits) does, while the reduction still
  routes the coflow through one δ-costing composite configuration.  This
  is precisely why the paper scales demand volumes 100× when it evaluates
  the 1000×-slower OCS: the coupling keeps δ inside the benefit region.
  The sweep pins the filter (``Bt`` fixed above the entry size) to
  isolate the physics; with the default ``Bt = α·δ·Co`` heuristic a tiny
  δ would shrink ``Bt`` below the entry size and disable the composite
  paths outright (see `bench_ablation_tuning.py`).

Both trends quantify the paper's qualitative arguments (§2.2's intuition
(b), §3.2's "more significant for the Slow OCS").
"""

from __future__ import annotations

from benchmarks.common import BENCH_SEED, emit, trials
from repro.analysis.experiment import ExperimentConfig, run_comparison
from repro.core.config import FilterConfig
from repro.switch.params import SwitchParams
from repro.workloads.skewed import SkewedWorkload

RADIX = 64
RATIOS = (2, 5, 10, 25, 50)  # Co/Ce with Co fixed at 100
DELTAS = (0.002, 0.02, 0.2, 2.0, 20.0)  # ms


def _ratio_rows():
    rows = []
    for ratio in RATIOS:
        params = SwitchParams(
            n_ports=RADIX,
            eps_rate=100.0 / ratio,
            ocs_rate=100.0,
            reconfig_delay=0.02,
        )
        result = run_comparison(
            ExperimentConfig(
                workload=SkewedWorkload.for_params(params),
                params=params,
                scheduler="solstice",
                n_trials=trials(),
                seed=BENCH_SEED,
            )
        )
        speedup = (
            result.h_completion_total.mean / result.cp_completion_total.mean
            if result.cp_completion_total.mean
            else float("nan")
        )
        rows.append(
            [
                f"{ratio}:1",
                result.h_completion_total.mean,
                result.cp_completion_total.mean,
                f"{speedup:.2f}x",
            ]
        )
    return rows


def _delta_rows():
    rows = []
    for delta in DELTAS:
        params = SwitchParams(
            n_ports=RADIX, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=delta
        )
        result = run_comparison(
            ExperimentConfig(
                # Fixed 1x volumes and a pinned Bt: only delta varies.
                workload=SkewedWorkload(),
                params=params,
                scheduler="solstice",
                n_trials=trials(),
                seed=BENCH_SEED,
                filter_config=FilterConfig(volume_threshold=2.0),
            )
        )
        speedup = (
            result.h_completion_total.mean / result.cp_completion_total.mean
            if result.cp_completion_total.mean
            else float("nan")
        )
        rows.append(
            [
                delta,
                result.h_completion_total.mean,
                result.cp_completion_total.mean,
                f"{speedup:.2f}x",
            ]
        )
    return rows


def test_sensitivity_rate_ratio(benchmark):
    rows = benchmark.pedantic(_ratio_rows, rounds=1, iterations=1)
    emit(
        "sensitivity_ratio",
        f"Sensitivity - OCS/EPS rate ratio (radix {RADIX}, skewed demand, delta=20us, Solstice)",
        ["Co:Ce", "h total (ms)", "cp total (ms)", "cp speedup"],
        rows,
    )
    # cp must help at the paper's 10:1 point.
    paper_point = next(row for row in rows if row[0] == "10:1")
    assert float(paper_point[3].rstrip("x")) > 1.0


def test_sensitivity_reconfig_delay(benchmark):
    rows = benchmark.pedantic(_delta_rows, rounds=1, iterations=1)
    emit(
        "sensitivity_delta",
        f"Sensitivity - reconfiguration penalty delta (radix {RADIX}, skewed demand, Co:Ce=10, Solstice)",
        ["delta (ms)", "h total (ms)", "cp total (ms)", "cp speedup"],
        rows,
    )
    # Inverted U: the speedup rises while delta dominates per-destination
    # reconfigurations, peaks, and collapses below 1x once delta exceeds
    # the coflow's EPS-only drain time (skip-the-OCS regime).
    speedups = [float(row[3].rstrip("x")) for row in rows]
    peak = max(speedups)
    assert peak > speedups[0] > 1.0
    assert speedups[-1] < 1.0, "at delta >> EPS drain time the cp circuit must lose"
