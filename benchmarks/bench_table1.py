"""Table 1 — h-Switch vs cp-Switch scheduling run-times using Solstice.

Each paper cell is "(slow, fast)" milliseconds of scheduler wall time for
the typical (§3.3) and intensive (§3.4) workloads.  Absolute numbers are
machine- and implementation-dependent (both the paper's controller and
this one are high-level Python); the paper emphasizes the h/cp **ratio**,
which grows with radix because the reduced demand matrix decomposes into
fewer permutations.
"""

from __future__ import annotations

from benchmarks.common import emit, radices, trials
from repro.analysis.figures import runtime_table

HEADERS = ["radix", "workload", "h (slow, fast) ms", "cp (slow, fast) ms", "ratio (slow, fast)"]


def _rows(scheduler: str):
    rows = []
    for label in ("typical", "intensive"):
        for row in runtime_table(
            scheduler, workload=label, radices=radices(), n_trials=trials()
        ):
            rows.append(
                [row.n_ports, label, str(row.h_switch), str(row.cp_switch), str(row.ratio)]
            )
    return rows


def test_table1_solstice_runtimes(benchmark):
    rows = benchmark.pedantic(_rows, args=("solstice",), rounds=1, iterations=1)
    emit(
        "table1",
        "Table 1 - scheduling run-times (ms), Solstice: h-Switch vs cp-Switch",
        HEADERS,
        rows,
    )
    # Sanity: every timing is positive.
    for row in rows:
        assert all(float(part) > 0 for part in row[2].split(", "))
