"""Ablation — k composite paths per direction (§4 "Additional Composite
Paths").

Figure 11 shows the single composite path saturating once several ports
carry skewed demand.  The paper sketches the fix — k paths per direction —
and this bench demonstrates it: with 4 skewed senders and receivers,
growing k recovers (most of) the lost completion time, at the price of k
reserved high-bandwidth port pairs.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import BENCH_SEED, emit, params_for, trials
from repro.analysis.aggregate import aggregate
from repro.core.multipath import MultiPathCpScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_hybrid, simulate_multipath
from repro.utils.rng import spawn_rngs
from repro.workloads.varying import VaryingSkewWorkload

RADIX = 64
N_SKEWED = 4
PATH_COUNTS = (1, 2, 4)


def _rows(ocs: str):
    params = params_for(ocs, RADIX)
    workload = VaryingSkewWorkload.for_params(params, n_skewed_ports=N_SKEWED)
    h_scheduler = SolsticeScheduler()
    specs = [
        workload.generate(RADIX, rng) for rng in spawn_rngs(BENCH_SEED, trials())
    ]

    rows = []
    h_totals = [
        simulate_hybrid(
            spec.demand, h_scheduler.schedule(spec.demand, params), params
        ).completion_time
        for spec in specs
    ]
    h_skews = []
    for spec in specs:
        result = simulate_hybrid(
            spec.demand, h_scheduler.schedule(spec.demand, params), params
        )
        h_skews.append(result.coflow_completion(spec.skewed_mask))
    rows.append(["h-Switch", "-", aggregate(h_totals).mean, aggregate(h_skews).mean])

    for k in PATH_COUNTS:
        scheduler = MultiPathCpScheduler(h_scheduler, n_paths=k)
        totals, skews = [], []
        for spec in specs:
            schedule = scheduler.schedule(spec.demand, params)
            result = simulate_multipath(spec.demand, schedule, params)
            totals.append(result.completion_time)
            skews.append(result.coflow_completion(spec.skewed_mask))
        rows.append([f"cp-Switch k={k}", k, aggregate(totals).mean, aggregate(skews).mean])
    return rows


def test_ablation_multipath_fast(benchmark):
    rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "ablation_multipath",
        f"Ablation - k composite paths ({N_SKEWED} skewed ports/direction, radix {RADIX}, Fast OCS, Solstice)",
        ["switch", "k", "total completion (ms)", "skewed completion (ms)"],
        rows,
    )
    # More composite paths must not hurt the skewed coflows.
    skew_by_k = [row[3] for row in rows[1:]]
    assert skew_by_k[-1] <= skew_by_k[0] * 1.05
