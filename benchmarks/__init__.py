"""Benchmark suite: paper-figure reproductions plus perf tracking.

Two kinds of benchmarks live here:

* ``bench_fig*.py`` / ``bench_table*.py`` / ``bench_ablation_*.py`` —
  pytest-benchmark files that regenerate one table or figure of the
  paper's evaluation (§3) each, print it as an aligned text table, and
  archive a copy under ``benchmarks/results/`` (quoted by
  ``EXPERIMENTS.md``).  Run with ``pytest benchmarks/ --benchmark-only -s``;
  the sweep is controlled by ``REPRO_RADICES`` and ``REPRO_SEEDS``.
* ``bench_perf.py`` — a standalone CLI that times the schedule/simulate
  hot paths against the frozen seed kernels in ``repro.sim.reference``,
  asserts the optimized pipeline is bit-identical to them, and writes the
  machine-readable report to ``BENCH_engine.json`` at the repo root.
  Run with ``PYTHONPATH=src python benchmarks/bench_perf.py`` (or
  ``--quick`` for the CI guard).
"""
