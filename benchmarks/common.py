"""Shared plumbing for the paper-reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (§3) and prints it as an aligned text table; a copy lands in
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote runs.

Environment knobs (the paper uses radices 32/64/128 and 100 random demand
matrices per point; the defaults here keep a full suite laptop-sized):

* ``REPRO_RADICES`` — comma-separated radix list (default ``32,64,128``).
* ``REPRO_SEEDS``   — demand matrices per experiment point (default 2).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.experiment import ComparisonAggregate, ExperimentConfig, run_comparison
from repro.analysis.report import format_table
from repro.core.config import FilterConfig
from repro.switch.params import SwitchParams, fast_ocs_params, slow_ocs_params

RESULTS_DIR = Path(__file__).parent / "results"

#: Root seed for every benchmark (per-trial generators are spawned off it).
BENCH_SEED = 2016


def radices() -> "tuple[int, ...]":
    raw = os.environ.get("REPRO_RADICES", "32,64,128")
    values = tuple(int(part) for part in raw.split(",") if part.strip())
    if not values:
        raise ValueError(f"REPRO_RADICES={raw!r} has no radices")
    return values


def trials() -> int:
    return int(os.environ.get("REPRO_SEEDS", "2"))


def params_for(ocs: str, n_ports: int) -> SwitchParams:
    """Switch parameters for an OCS class name ("fast" / "slow")."""
    if ocs == "fast":
        return fast_ocs_params(n_ports)
    if ocs == "slow":
        return slow_ocs_params(n_ports)
    raise ValueError(f"unknown OCS class {ocs!r}")


def run_point(
    workload_factory,
    scheduler: str,
    ocs: str,
    n_ports: int,
    *,
    n_trials: "int | None" = None,
    filter_config: "FilterConfig | None" = None,
) -> ComparisonAggregate:
    """One experiment point: h-Switch vs cp-Switch on one workload/radix.

    ``workload_factory(params)`` builds the demand generator so each OCS
    class gets its paper-matched volume scale.
    """
    params = params_for(ocs, n_ports)
    config = ExperimentConfig(
        workload=workload_factory(params),
        params=params,
        scheduler=scheduler,
        n_trials=n_trials if n_trials is not None else trials(),
        seed=BENCH_SEED,
        filter_config=filter_config or FilterConfig(),
    )
    return run_comparison(config)


def emit(name: str, title: str, headers, rows) -> str:
    """Render, print, and persist one benchmark table."""
    text = format_table(headers, rows, title=title)
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return text


def pct_gain(h_value: float, cp_value: float) -> float:
    """Percent reduction of cp relative to h (positive = cp better)."""
    if h_value == 0:
        return 0.0
    return (1.0 - cp_value / h_value) * 100.0
