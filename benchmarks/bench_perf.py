"""Perf-tracking micro-benchmark: seed pipeline vs optimized pipeline.

Unlike the ``bench_fig*.py`` files (which reproduce the paper's figures),
this benchmark tracks the *implementation*: it times schedule + simulate
for the h-Switch and cp-Switch pipelines at each radix, once through the
frozen seed kernels (:mod:`repro.sim.reference`, "before") and once
through the live library ("after"), asserting along the way that both
produce bit-identical simulations on the seeded Figure 5/6 workload.

The machine-readable report lands in ``BENCH_engine.json`` at the repo
root so later PRs can diff wall-clock numbers against a recorded
baseline.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full suite
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI: radix 32

``--min-speedup X`` exits non-zero if the headline (largest-radix
Solstice schedule+simulate) speedup falls below ``X`` — the CI guard
against quietly regressing the hot path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import DEFAULT_SEED, STAGES, run_suite, write_report  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"


def _parse_radices(raw: str) -> "tuple[int, ...]":
    values = tuple(int(part) for part in raw.split(",") if part.strip())
    if not values:
        raise argparse.ArgumentTypeError(f"no radices in {raw!r}")
    return values


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--radices",
        type=_parse_radices,
        default=(32, 64, 128),
        help="comma-separated radix sweep (default: 32,64,128)",
    )
    parser.add_argument(
        "--trials", type=int, default=2, help="seeded demands per point (default: 2)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repeats per point; per-stage minimum is kept (default: 2)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="root demand seed"
    )
    parser.add_argument(
        "--ocs", choices=("fast", "slow"), default="fast", help="OCS class"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: radix 32 only, 1 trial, 1 repeat",
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="add the Solstice-only kernel-scaling points (radix 256, 512)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the headline speedup is below this factor",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.radices, args.trials, args.repeats = (32,), 1, 1

    payload = run_suite(
        radices=args.radices,
        ocs=args.ocs,
        n_trials=args.trials,
        seed=args.seed,
        repeats=args.repeats,
        extended_radices=(256, 512) if args.extended else (),
    )
    path = write_report(payload, args.output)

    header = f"{'point':<16}" + "".join(f"{s:>14}" for s in STAGES) + f"{'total':>12}{'speedup':>9}"
    print(header)
    print("-" * len(header))
    for point in payload["points"]:
        label = f"{point['scheduler']}/{point['radix']}"
        for side in ("before_s", "after_s"):
            row = f"{label + ' ' + side[:-2]:<16}"
            row += "".join(f"{point[side][s] * 1e3:>12.2f}ms" for s in STAGES)
            row += f"{point[side]['total'] * 1e3:>10.2f}ms"
            row += f"{point['speedup']:>8.2f}x" if side == "after_s" else ""
            print(row)
    print(f"\nall points bit-identical; report written to {path}")

    headline = payload["headline_speedup"].get("solstice")
    if headline is None:  # pragma: no cover - solstice is always in the suite
        headline = max(payload["headline_speedup"].values())
    print(
        f"headline: radix-{payload['headline_radix']} solstice "
        f"schedule+simulate speedup {headline:.2f}x"
    )
    if args.min_speedup is not None and headline < args.min_speedup:
        print(
            f"FAIL: headline speedup {headline:.2f}x < required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
