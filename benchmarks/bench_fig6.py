"""Figure 6 — One-to-Many/Many-to-One Demand Example: Fraction of Demand
Served by the OCS (Eclipse-based) and OCS configurations.

Paper result: h-Switch utilization degrades with radix (fast OCS spends
more than half the 1 ms window reconfiguring — about 31-35 configurations
at 20 us each); cp-Switch stays near full utilization with 1-2
configurations.
"""

from __future__ import annotations

from benchmarks.common import emit, radices, trials
from repro.analysis.figures import figure6


def _rows(ocs: str):
    rows = []
    config_rows = []
    for point in figure6(ocs, radices=radices(), n_trials=trials()):
        n, res = point.n_ports, point.result
        rows.append(
            [
                n,
                res.h_ocs_fraction.mean,
                res.cp_ocs_fraction.mean,
                f"{res.utilization_gain:.2f}x",
            ]
        )
        config_rows.append([n, res.h_configs.mean, res.cp_configs.mean])
    return rows, config_rows


HEADERS = ["radix", "h OCS fraction", "cp OCS fraction", "cp/h"]


def test_fig6a_utilization_fast_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig6a",
        "Figure 6(a) - fraction of demand over OCS, skewed demand, Fast OCS (Eclipse, 1 ms window)",
        HEADERS,
        rows,
    )
    emit(
        "fig6c_fast",
        "Figure 6(c) - OCS configurations, skewed demand, Fast OCS (Eclipse)",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] > row[1], "cp-Switch must serve a larger fraction over the OCS"
    # Paper: h-Switch needs ~31-35 configs; cp-Switch at most a handful.
    for row in config_rows:
        assert row[1] >= 20
        assert row[2] <= 6


def test_fig6b_utilization_slow_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig6b",
        "Figure 6(b) - fraction of demand over OCS, skewed demand, Slow OCS (Eclipse, 100 ms window)",
        HEADERS,
        rows,
    )
    emit(
        "fig6c_slow",
        "Figure 6(c) - OCS configurations, skewed demand, Slow OCS (Eclipse)",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] > row[1]
