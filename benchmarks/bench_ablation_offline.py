"""Ablation — offline execution / permutation reordering (§4 "Offline
Execution").

Reordering the permutation matrices cannot change the total completion
time or windowed utilization (same configurations, same durations), but it
*can* pull skewed coflows earlier.  The paper observes that reordering
barely helps h-Switch (skewed traffic is gated by many reconfigurations
regardless of order) while for cp-Switch scheduling composite-path
configurations first reduces the skewed coflows' completion.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import BENCH_SEED, emit, params_for, trials
from repro.analysis.aggregate import aggregate
from repro.core.offline import reorder
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.utils.rng import spawn_rngs
from repro.workloads.combined import CombinedWorkload

RADIX = 64


def _rows(ocs: str):
    params = params_for(ocs, RADIX)
    workload = CombinedWorkload.typical(params)
    h_scheduler = SolsticeScheduler()
    cp_scheduler = CpSwitchScheduler(h_scheduler)
    specs = [workload.generate(RADIX, rng) for rng in spawn_rngs(BENCH_SEED, trials())]

    h_online, h_reversed, cp_online, cp_offline = [], [], [], []
    cp_total_online, cp_total_offline = [], []
    for spec in specs:
        skew = spec.skewed_mask
        h_schedule = h_scheduler.schedule(spec.demand, params)
        h_online.append(
            simulate_hybrid(spec.demand, h_schedule, params).coflow_completion(skew)
        )
        h_reversed.append(
            simulate_hybrid(
                spec.demand, reorder(h_schedule, "reversed"), params
            ).coflow_completion(skew)
        )
        cp_schedule = cp_scheduler.schedule(spec.demand, params)
        online = simulate_cp(spec.demand, cp_schedule, params)
        cp_online.append(online.coflow_completion(skew))
        cp_total_online.append(online.completion_time)
        offline = simulate_cp(
            spec.demand, reorder(cp_schedule, "composite-first"), params
        )
        cp_offline.append(offline.coflow_completion(skew))
        cp_total_offline.append(offline.completion_time)

    return [
        ["h-Switch online", aggregate(h_online).mean],
        ["h-Switch reversed", aggregate(h_reversed).mean],
        ["cp-Switch online", aggregate(cp_online).mean],
        ["cp-Switch composite-first", aggregate(cp_offline).mean],
    ], (aggregate(cp_total_online).mean, aggregate(cp_total_offline).mean)


def test_ablation_offline_fast(benchmark):
    rows, (total_online, total_offline) = benchmark.pedantic(
        _rows, args=("fast",), rounds=1, iterations=1
    )
    emit(
        "ablation_offline",
        f"Ablation - offline permutation reordering (radix {RADIX}, typical, Fast OCS, Solstice): "
        "skewed coflow completion (ms)",
        ["execution", "skewed completion (ms)"],
        rows,
    )
    # Reordering must leave the total completion essentially unchanged
    # (same configurations, same total circuit + reconfiguration time).
    np.testing.assert_allclose(total_offline, total_online, rtol=0.05)
    # Composite-first must not hurt the skewed coflows.
    cp_online = rows[2][1]
    cp_offline = rows[3][1]
    assert cp_offline <= cp_online * 1.05
