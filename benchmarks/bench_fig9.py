"""Figure 9 — Intensive Typical DCN and One-to-Many/Many-to-One Demand:
Completion Time (Solstice-based) and OCS configurations.

Paper result: with a 4x-density background, radix-32 completion times are
nearly identical (the background dominates both switches); by radix 128
cp-Switch wins by up to 7 % (fast) / 27 % (slow) on the total demand and by
46-80 % on the skewed subset.
"""

from __future__ import annotations

from benchmarks.common import emit, pct_gain, radices, trials
from repro.analysis.figures import figure9

HEADERS = [
    "radix",
    "h total",
    "cp total",
    "total gain",
    "h o2m",
    "cp o2m",
    "o2m gain",
    "h m2o",
    "cp m2o",
    "m2o gain",
]


def _rows(ocs: str):
    rows = []
    config_rows = []
    for point in figure9(ocs, radices=radices(), n_trials=trials()):
        n, res = point.n_ports, point.result
        rows.append(
            [
                n,
                res.h_completion_total.mean,
                res.cp_completion_total.mean,
                f"{pct_gain(res.h_completion_total.mean, res.cp_completion_total.mean):.0f}%",
                res.h_completion_o2m.mean,
                res.cp_completion_o2m.mean,
                f"{pct_gain(res.h_completion_o2m.mean, res.cp_completion_o2m.mean):.0f}%",
                res.h_completion_m2o.mean,
                res.cp_completion_m2o.mean,
                f"{pct_gain(res.h_completion_m2o.mean, res.cp_completion_m2o.mean):.0f}%",
            ]
        )
        config_rows.append([n, res.h_configs.mean, res.cp_configs.mean])
    return rows, config_rows


def test_fig9a_completion_fast_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig9a",
        "Figure 9(a) - completion time (ms), intensive DCN + skewed demand, Fast OCS (Solstice)",
        HEADERS,
        rows,
    )
    emit(
        "fig9c_fast",
        "Figure 9(c) - OCS configurations, intensive DCN + skewed, Fast OCS",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    # The paper's signature shape: near-tie at low radix, cp ahead at the
    # largest radix.
    if 128 in radices():
        last = rows[-1]
        assert last[2] <= last[1] * 1.02


def test_fig9b_completion_slow_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig9b",
        "Figure 9(b) - completion time (ms), intensive DCN + skewed demand, Slow OCS (Solstice)",
        HEADERS,
        rows,
    )
    emit(
        "fig9c_slow",
        "Figure 9(c) - OCS configurations, intensive DCN + skewed, Slow OCS",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
