"""Figure 5 — One-to-Many/Many-to-One Demand Example: Completion Time
(Solstice-based) and OCS configurations.

Paper result: cp-Switch completes the total, o2m, and m2o demands faster
than h-Switch for both OCS classes; the advantage grows with the switch
radix because h-Switch needs one reconfiguration per destination/source
while cp-Switch needs none (Figure 5(c)).
"""

from __future__ import annotations

from benchmarks.common import emit, pct_gain, radices, trials
from repro.analysis.figures import figure5


def _rows(ocs: str):
    rows = []
    config_rows = []
    for point in figure5(ocs, radices=radices(), n_trials=trials()):
        n, res = point.n_ports, point.result
        rows.append(
            [
                n,
                res.h_completion_total.mean,
                res.cp_completion_total.mean,
                res.h_completion_o2m.mean,
                res.cp_completion_o2m.mean,
                res.h_completion_m2o.mean,
                res.cp_completion_m2o.mean,
                f"{pct_gain(res.h_completion_total.mean, res.cp_completion_total.mean):.0f}%",
            ]
        )
        config_rows.append([n, res.h_configs.mean, res.cp_configs.mean])
    return rows, config_rows


HEADERS = ["radix", "h total", "cp total", "h o2m", "cp o2m", "h m2o", "cp m2o", "cp gain"]


def test_fig5a_completion_fast_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig5a",
        "Figure 5(a) - completion time (ms), skewed demand, Fast OCS (Solstice)",
        HEADERS,
        rows,
    )
    emit(
        "fig5c_fast",
        "Figure 5(c) - OCS configurations, skewed demand, Fast OCS",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] < row[1], "cp-Switch must complete the total demand faster"
    for row in config_rows:
        assert row[2] < row[1], "cp-Switch must need fewer OCS configurations"


def test_fig5b_completion_slow_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig5b",
        "Figure 5(b) - completion time (ms), skewed demand, Slow OCS (Solstice)",
        HEADERS,
        rows,
    )
    emit(
        "fig5c_slow",
        "Figure 5(c) - OCS configurations, skewed demand, Slow OCS",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] < row[1]
