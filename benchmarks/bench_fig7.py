"""Figure 7 — Typical DCN with One-to-Many/Many-to-One Demand:
Completion Time (Solstice-based) and OCS configurations.

Paper result (fast OCS): cp-Switch cuts the o2m/m2o completion by 15-70 %
and the total by 9-37 %; (slow OCS): 11-75 % and 4-49 %.  Fewer OCS
configurations drive both.
"""

from __future__ import annotations

from benchmarks.common import emit, pct_gain, radices, trials
from repro.analysis.figures import figure7

HEADERS = [
    "radix",
    "h total",
    "cp total",
    "total gain",
    "h o2m",
    "cp o2m",
    "o2m gain",
    "h m2o",
    "cp m2o",
    "m2o gain",
]


def _rows(ocs: str):
    rows = []
    config_rows = []
    for point in figure7(ocs, radices=radices(), n_trials=trials()):
        n, res = point.n_ports, point.result
        rows.append(
            [
                n,
                res.h_completion_total.mean,
                res.cp_completion_total.mean,
                f"{pct_gain(res.h_completion_total.mean, res.cp_completion_total.mean):.0f}%",
                res.h_completion_o2m.mean,
                res.cp_completion_o2m.mean,
                f"{pct_gain(res.h_completion_o2m.mean, res.cp_completion_o2m.mean):.0f}%",
                res.h_completion_m2o.mean,
                res.cp_completion_m2o.mean,
                f"{pct_gain(res.h_completion_m2o.mean, res.cp_completion_m2o.mean):.0f}%",
            ]
        )
        config_rows.append([n, res.h_configs.mean, res.cp_configs.mean])
    return rows, config_rows


def test_fig7a_completion_fast_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("fast",), rounds=1, iterations=1)
    emit(
        "fig7a",
        "Figure 7(a) - completion time (ms), typical DCN + skewed demand, Fast OCS (Solstice)",
        HEADERS,
        rows,
    )
    emit(
        "fig7c_fast",
        "Figure 7(c) - OCS configurations, typical DCN + skewed, Fast OCS",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[2] <= row[1] * 1.02, "cp total completion must not regress"
        assert row[5] < row[4], "cp must improve the o2m coflow completion"


def test_fig7b_completion_slow_ocs(benchmark):
    rows, config_rows = benchmark.pedantic(_rows, args=("slow",), rounds=1, iterations=1)
    emit(
        "fig7b",
        "Figure 7(b) - completion time (ms), typical DCN + skewed demand, Slow OCS (Solstice)",
        HEADERS,
        rows,
    )
    emit(
        "fig7c_slow",
        "Figure 7(c) - OCS configurations, typical DCN + skewed, Slow OCS",
        ["radix", "h configs", "cp configs"],
        config_rows,
    )
    for row in rows:
        assert row[5] < row[4]
